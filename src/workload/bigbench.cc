#include "workload/bigbench.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace deepsea {

namespace {

constexpr double kItemRowBytes = 60.0;
constexpr double kCustomerRowBytes = 80.0;
constexpr double kStoreSalesRowBytes = 110.0;
constexpr double kClickstreamRowBytes = 60.0;
constexpr double kWebSalesRowBytes = 90.0;
constexpr int kNumCategories = 40;
constexpr double kNumCustomers = 1.0e6;

// Draws a value from the histogram's distribution: bin by mass, uniform
// within the bin.
double SampleFromHistogram(const AttributeHistogram& hist, Rng* rng) {
  if (hist.empty()) {
    return rng->Uniform(hist.domain().lo, hist.domain().hi);
  }
  double u = rng->NextDouble() * hist.total_count();
  for (int b = 0; b < hist.num_bins(); ++b) {
    const double c = hist.bin_count(b);
    if (u <= c) {
      const Interval bi = hist.bin_interval(b);
      return rng->Uniform(bi.lo, bi.hi);
    }
    u -= c;
  }
  return hist.domain().hi;
}

// Rescales a histogram onto a new domain preserving bin masses.
AttributeHistogram RescaleHistogram(const AttributeHistogram& hist,
                                    const Interval& target, int bins) {
  AttributeHistogram out(target, bins);
  const Interval from = hist.domain();
  const double scale = target.Width() / from.Width();
  for (int b = 0; b < hist.num_bins(); ++b) {
    const Interval bi = hist.bin_interval(b);
    const Interval mapped(target.lo + (bi.lo - from.lo) * scale,
                          target.lo + (bi.hi - from.lo) * scale);
    out.AddRange(mapped, hist.bin_count(b));
  }
  return out;
}

struct FactSpec {
  const char* name;
  double byte_share;
  double row_bytes;
};

const FactSpec kFacts[] = {
    {"store_sales", 0.55, kStoreSalesRowBytes},
    {"web_clickstreams", 0.30, kClickstreamRowBytes},
    {"web_sales", 0.15, kWebSalesRowBytes},
};

}  // namespace

std::vector<std::string> BigBenchDataset::FactTables() {
  return {"store_sales", "web_clickstreams", "web_sales"};
}

Status BigBenchDataset::Generate(const Options& options, Catalog* catalog) {
  Rng rng(options.seed);
  const Interval item_domain(0.0, options.item_sk_max);

  // item_sk distribution at logical scale.
  AttributeHistogram item_dist(item_domain, options.histogram_bins);
  if (options.item_sk_distribution.has_value()) {
    item_dist = RescaleHistogram(*options.item_sk_distribution, item_domain,
                                 options.histogram_bins);
  } else {
    item_dist.AddRange(item_domain, 1.0);
  }

  // --- dimension: item ---
  {
    Schema schema({{"item.item_sk", DataType::kInt64},
                   {"item.category_id", DataType::kInt64},
                   {"item.price", DataType::kDouble}});
    auto table = std::make_shared<Table>("item", schema);
    const uint64_t logical_rows = static_cast<uint64_t>(options.item_sk_max) + 1;
    table->set_logical_row_count(logical_rows);
    table->set_avg_row_bytes(kItemRowBytes);
    table->ReserveRows(options.sample_rows_per_dim);
    // Sample item_sks spread across the domain (strided for coverage).
    const double stride = options.item_sk_max /
                          std::max<uint64_t>(options.sample_rows_per_dim, 1);
    for (uint64_t i = 0; i < options.sample_rows_per_dim; ++i) {
      const int64_t sk = static_cast<int64_t>(i * stride);
      // Categories cycle over sample positions (not raw keys) so the
      // strided sample still covers all categories.
      table->AddRow({Value(sk), Value(static_cast<int64_t>(i % kNumCategories)),
                     Value(1.0 + 99.0 * rng.NextDouble())});
    }
    table->set_ndv("item.item_sk", static_cast<double>(logical_rows));
    table->set_ndv("item.category_id", kNumCategories);
    AttributeHistogram hist(item_domain, options.histogram_bins);
    hist.AddRange(item_domain, static_cast<double>(logical_rows));
    table->SetHistogram("item.item_sk", hist);
    DEEPSEA_RETURN_IF_ERROR(catalog->Register(table));
  }

  // --- dimension: customer ---
  {
    Schema schema({{"customer.customer_sk", DataType::kInt64},
                   {"customer.age", DataType::kInt64},
                   {"customer.income", DataType::kDouble}});
    auto table = std::make_shared<Table>("customer", schema);
    table->set_logical_row_count(static_cast<uint64_t>(kNumCustomers));
    table->set_avg_row_bytes(kCustomerRowBytes);
    table->ReserveRows(options.sample_rows_per_dim);
    const double stride =
        kNumCustomers / std::max<uint64_t>(options.sample_rows_per_dim, 1);
    for (uint64_t i = 0; i < options.sample_rows_per_dim; ++i) {
      const int64_t sk = static_cast<int64_t>(i * stride);
      table->AddRow({Value(sk), Value(static_cast<int64_t>(18 + (sk % 73))),
                     Value(20000.0 + 150000.0 * rng.NextDouble())});
    }
    table->set_ndv("customer.customer_sk", kNumCustomers);
    table->set_ndv("customer.age", 73.0);
    DEEPSEA_RETURN_IF_ERROR(catalog->Register(table));
  }

  // --- facts ---
  const double dim_bytes =
      (options.item_sk_max + 1) * kItemRowBytes + kNumCustomers * kCustomerRowBytes;
  const double fact_bytes = std::max(options.total_bytes - dim_bytes, 0.0);
  for (const FactSpec& spec : kFacts) {
    const std::string n = spec.name;
    Schema schema;
    if (n == "store_sales") {
      schema = Schema({{"store_sales.item_sk", DataType::kInt64},
                       {"store_sales.customer_sk", DataType::kInt64},
                       {"store_sales.quantity", DataType::kInt64},
                       {"store_sales.net_paid", DataType::kDouble},
                       {"store_sales.sold_date", DataType::kInt64}});
    } else if (n == "web_clickstreams") {
      schema = Schema({{"web_clickstreams.item_sk", DataType::kInt64},
                       {"web_clickstreams.user_sk", DataType::kInt64},
                       {"web_clickstreams.click_date", DataType::kInt64}});
    } else {
      schema = Schema({{"web_sales.item_sk", DataType::kInt64},
                       {"web_sales.customer_sk", DataType::kInt64},
                       {"web_sales.net_paid", DataType::kDouble}});
    }
    auto table = std::make_shared<Table>(n, schema);
    const double bytes = fact_bytes * spec.byte_share;
    const uint64_t logical_rows = static_cast<uint64_t>(bytes / spec.row_bytes);
    table->set_logical_row_count(logical_rows);
    table->set_avg_row_bytes(spec.row_bytes);
    table->ReserveRows(options.sample_rows_per_fact);
    // Physical-sample fidelity: the item dimension sample holds every
    // `item_stride`-th key, so fact sample keys are quantized onto that
    // grid to give the sampled join realistic fan-out.
    const double item_stride =
        options.item_sk_max / std::max<uint64_t>(options.sample_rows_per_dim, 1);
    for (uint64_t i = 0; i < options.sample_rows_per_fact; ++i) {
      const double raw = SampleFromHistogram(item_dist, &rng);
      const int64_t item_sk = static_cast<int64_t>(
          Clamp(std::round(raw / item_stride) * item_stride, 0.0,
                options.item_sk_max));
      const int64_t other_sk = rng.UniformInt(0, static_cast<int64_t>(kNumCustomers) - 1);
      if (n == "store_sales") {
        table->AddRow({Value(item_sk), Value(other_sk),
                       Value(rng.UniformInt(1, 10)),
                       Value(5.0 + 500.0 * rng.NextDouble()),
                       Value(rng.UniformInt(0, 365))});
      } else if (n == "web_clickstreams") {
        table->AddRow({Value(item_sk), Value(other_sk),
                       Value(rng.UniformInt(0, 365))});
      } else {
        table->AddRow({Value(item_sk), Value(other_sk),
                       Value(5.0 + 500.0 * rng.NextDouble())});
      }
    }
    // Logical-scale histogram on item_sk follows the generating
    // distribution exactly (no sample noise).
    AttributeHistogram hist = item_dist;
    if (hist.total_count() > 0.0) {
      hist.NormalizeTo(static_cast<double>(logical_rows));
    }
    table->SetHistogram(n + ".item_sk", hist);
    table->set_ndv(n + ".item_sk", options.item_sk_max + 1);
    if (n == "store_sales") {
      // sold_date is uniformly distributed over a year; a second
      // ordered attribute for multi-attribute partitioning.
      AttributeHistogram dates(Interval(0, 365), 73);
      dates.AddRange(Interval(0, 365), static_cast<double>(logical_rows));
      table->SetHistogram("store_sales.sold_date", dates);
      table->set_ndv("store_sales.sold_date", 366);
    }
    table->set_ndv(n + (n == "web_clickstreams" ? ".user_sk" : ".customer_sk"),
                   kNumCustomers);
    DEEPSEA_RETURN_IF_ERROR(catalog->Register(table));
  }
  return Status::OK();
}

namespace {

ExprPtr ItemSkSelection(const std::string& fact, double lo, double hi) {
  const std::string col = fact + ".item_sk";
  return And(Cmp(CompareOp::kGe, Col(col), LitD(lo)),
             Cmp(CompareOp::kLe, Col(col), LitD(hi)));
}

PlanPtr JoinFactItem(const std::string& fact) {
  return Join(Scan(fact), Scan("item"),
              Cmp(CompareOp::kEq, Col(fact + ".item_sk"), Col("item.item_sk")));
}

PlanPtr JoinFactCustomer(const std::string& fact) {
  return Join(Scan(fact), Scan("customer"),
              Cmp(CompareOp::kEq, Col(fact + ".customer_sk"),
                  Col("customer.customer_sk")));
}

// Pass-through projection keeping the given qualified columns. The
// templates materialize *projected* join results — the view candidate
// is the Project node (Definition 6 includes projections), which keeps
// views much smaller than the raw join output.
PlanPtr ProjectCols(PlanPtr input, const std::vector<std::string>& cols) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const std::string& c : cols) {
    exprs.push_back(Col(c));
    names.push_back(c);
  }
  return Project(std::move(input), std::move(exprs), std::move(names));
}

// The shared projected join view each template family reads: one view
// per (fact, dimension) pair carrying the union of the columns its
// templates need, so Q1/Q20/Q30 (etc.) all reuse a single view.
PlanPtr ItemJoinView(const std::string& fact) {
  std::vector<std::string> cols = {fact + ".item_sk", "item.category_id"};
  if (fact == "store_sales") {
    cols.push_back("store_sales.quantity");
    cols.push_back("store_sales.net_paid");
    cols.push_back("store_sales.sold_date");
  } else if (fact == "web_sales") {
    cols.push_back("web_sales.net_paid");
  }
  return ProjectCols(JoinFactItem(fact), cols);
}

PlanPtr CustomerJoinView(const std::string& fact) {
  std::vector<std::string> cols = {fact + ".item_sk", "customer.age"};
  if (fact == "store_sales") {
    cols.push_back("store_sales.quantity");
    cols.push_back("store_sales.net_paid");
  }
  return ProjectCols(JoinFactCustomer(fact), cols);
}

}  // namespace

std::vector<std::string> BigBenchTemplates::Names() {
  return {"Q1", "Q5", "Q7", "Q9", "Q12", "Q16", "Q20", "Q26", "Q29", "Q30"};
}

Result<std::string> BigBenchTemplates::FactTableOf(const std::string& name) {
  if (name == "Q1" || name == "Q7" || name == "Q9" || name == "Q20" ||
      name == "Q26" || name == "Q30") {
    return std::string("store_sales");
  }
  if (name == "Q5" || name == "Q12") return std::string("web_clickstreams");
  if (name == "Q16" || name == "Q29") return std::string("web_sales");
  return Status::NotFound("unknown template: " + name);
}

Result<PlanPtr> BigBenchTemplates::Build(const std::string& name, double lo,
                                         double hi) {
  DEEPSEA_ASSIGN_OR_RETURN(std::string fact, FactTableOf(name));
  const ExprPtr sel = ItemSkSelection(fact, lo, hi);

  if (name == "Q1") {
    return Aggregate(Select(ItemJoinView(fact), sel), {"item.category_id"},
                     {{AggFunc::kCount, "", "cnt"},
                      {AggFunc::kSum, "store_sales.quantity", "total_quantity"}});
  }
  if (name == "Q5") {
    return Aggregate(Select(ItemJoinView(fact), sel), {"item.category_id"},
                     {{AggFunc::kCount, "", "clicks"}});
  }
  if (name == "Q7") {
    return Aggregate(Select(CustomerJoinView(fact), sel), {"customer.age"},
                     {{AggFunc::kSum, "store_sales.net_paid", "revenue"}});
  }
  if (name == "Q9") {
    PlanPtr two_joins = Join(
        JoinFactItem(fact), Scan("customer"),
        Cmp(CompareOp::kEq, Col("store_sales.customer_sk"),
            Col("customer.customer_sk")));
    PlanPtr view = ProjectCols(
        two_joins, {"store_sales.item_sk", "item.category_id",
                    "store_sales.net_paid", "customer.age"});
    return Aggregate(Select(view, sel), {"item.category_id"},
                     {{AggFunc::kSum, "store_sales.net_paid", "revenue"}});
  }
  if (name == "Q12") {
    // Carries an extra dimension range predicate (item.price >= 50)
    // inside the view, exercising matching with residual ranges.
    PlanPtr filtered = Select(
        JoinFactItem(fact), Cmp(CompareOp::kGe, Col("item.price"), LitD(50.0)));
    PlanPtr view = ProjectCols(
        filtered, {fact + ".item_sk", "item.category_id", "item.price"});
    return Aggregate(Select(view, sel), {"item.category_id"},
                     {{AggFunc::kCount, "", "premium_clicks"}});
  }
  if (name == "Q16") {
    return Aggregate(Select(ItemJoinView(fact), sel), {"item.category_id"},
                     {{AggFunc::kSum, "web_sales.net_paid", "revenue"}});
  }
  if (name == "Q20") {
    return Aggregate(Select(ItemJoinView(fact), sel), {"item.category_id"},
                     {{AggFunc::kAvg, "store_sales.net_paid", "avg_paid"}});
  }
  if (name == "Q26") {
    PlanPtr two_joins = Join(
        JoinFactCustomer(fact), Scan("item"),
        Cmp(CompareOp::kEq, Col("store_sales.item_sk"), Col("item.item_sk")));
    PlanPtr view = ProjectCols(
        two_joins, {"store_sales.item_sk", "customer.age",
                    "store_sales.quantity", "item.category_id"});
    return Aggregate(Select(view, sel), {"customer.age"},
                     {{AggFunc::kSum, "store_sales.quantity", "qty"}});
  }
  if (name == "Q29") {
    return Aggregate(Select(CustomerJoinView(fact), sel), {"customer.age"},
                     {{AggFunc::kCount, "", "orders"}});
  }
  if (name == "Q30") {
    return Aggregate(Select(ItemJoinView(fact), sel), {"item.category_id"},
                     {{AggFunc::kSum, "store_sales.net_paid", "revenue"}});
  }
  return Status::NotFound("unknown template: " + name);
}

Result<PlanPtr> BigBenchTemplates::BuildQ30D(double item_lo, double item_hi,
                                             double date_lo, double date_hi) {
  const ExprPtr sel =
      And(ItemSkSelection("store_sales", item_lo, item_hi),
          And(Cmp(CompareOp::kGe, Col("store_sales.sold_date"), LitD(date_lo)),
              Cmp(CompareOp::kLe, Col("store_sales.sold_date"), LitD(date_hi))));
  return Aggregate(Select(ItemJoinView("store_sales"), sel),
                   {"item.category_id"},
                   {{AggFunc::kSum, "store_sales.net_paid", "revenue"}});
}

}  // namespace deepsea
