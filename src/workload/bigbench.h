#ifndef DEEPSEA_WORKLOAD_BIGBENCH_H_
#define DEEPSEA_WORKLOAD_BIGBENCH_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "common/rng.h"
#include "plan/plan.h"

namespace deepsea {

/// Generator for a BigBench-like retail analytics dataset (the paper
/// evaluates on BigBench [13] instances of 100 GB and 500 GB). The
/// schema is a simplified but structurally faithful subset: large fact
/// tables carrying `item_sk` (the selection/partition attribute all the
/// paper's workloads constrain) plus joinable dimensions.
///
///   item(item_sk, category_id, price)                 - dimension
///   customer(customer_sk, age, income)                - dimension
///   store_sales(item_sk, customer_sk, quantity,
///               net_paid, sold_date)                  - fact, ~55%
///   web_clickstreams(item_sk, user_sk, click_date)    - fact, ~30%
///   web_sales(item_sk, customer_sk, net_paid)         - fact, ~15%
///
/// Tables carry both scales (see DESIGN.md): logical sizes summing to
/// `total_bytes` drive the cluster cost model; a physical sample of
/// `sample_rows_per_fact` rows per fact table drives the executor.
/// `item_sk` values are drawn from `item_sk_distribution` when given
/// (the paper samples item_sk from the SDSS `ra` histogram, Section
/// 10.1) and uniformly otherwise (the synthetic instances).
class BigBenchDataset {
 public:
  struct Options {
    double total_bytes = 100.0 * 1e9;
    /// item_sk domain [0, 400000] (the domain Fig. 9 quotes).
    double item_sk_max = 400000.0;
    uint64_t sample_rows_per_fact = 4000;
    uint64_t sample_rows_per_dim = 800;
    uint64_t seed = 7;
    /// Optional access-pattern-shaped item_sk distribution (over any
    /// domain; it is rescaled onto [0, item_sk_max]).
    std::optional<AttributeHistogram> item_sk_distribution;
    int histogram_bins = 420;
  };

  /// Populates `catalog` with the generated tables.
  static Status Generate(const Options& options, Catalog* catalog);

  /// Names of the fact tables (those carrying item_sk at fact scale).
  static std::vector<std::string> FactTables();
};

/// The BigBench query templates the paper picks (ten join templates:
/// Q1, Q5, Q7, Q9, Q12, Q16, Q20, Q26, Q29, Q30), each extended with a
/// range selection on `item_sk` (Section 10.1). Templates build the
/// *DeepSea-form* plan: the selection is placed ABOVE the join(s) so
/// the join result is a reusable view candidate; PushDownSelections
/// recovers the conventional (Hive) plan.
class BigBenchTemplates {
 public:
  /// Template names in the paper's order.
  static std::vector<std::string> Names();

  /// The fact table a template selects on (its selection attribute is
  /// "<fact>.item_sk").
  static Result<std::string> FactTableOf(const std::string& name);

  /// Builds the plan for `name` with the selection item_sk in [lo, hi].
  static Result<PlanPtr> Build(const std::string& name, double lo, double hi);

  /// Extension template (not part of the paper's ten): Q30 with
  /// selections on BOTH item_sk and sold_date, exercising views
  /// partitioned on multiple attributes (Section 11 future work).
  static Result<PlanPtr> BuildQ30D(double item_lo, double item_hi,
                                   double date_lo, double date_hi);
};

}  // namespace deepsea

#endif  // DEEPSEA_WORKLOAD_BIGBENCH_H_
