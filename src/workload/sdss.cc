#include "workload/sdss.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace deepsea {

SdssTraceModel::SdssTraceModel(Config config, uint64_t seed)
    : cfg_(config), rng_(seed) {}

double SdssTraceModel::SampleMidpoint(bool early_regime) {
  // Early regime: dominant mass in the 200-300 band (Fig. 2, queries
  // 1..~3000). Late regime: mass shifts toward ~100 degrees while the
  // 250 band stays warm (Fig. 2 tail and Fig. 1 aggregate shape).
  const double u = rng_.NextDouble();
  if (early_regime) {
    if (u < 0.75) return rng_.Gaussian(250.0, 25.0);
    if (u < 0.90) return rng_.Gaussian(110.0, 12.0);
    return rng_.Uniform(cfg_.ra_domain.lo, cfg_.ra_domain.hi);
  }
  if (u < 0.60) return rng_.Gaussian(105.0, 10.0);
  if (u < 0.85) return rng_.Gaussian(250.0, 30.0);
  return rng_.Uniform(cfg_.ra_domain.lo, cfg_.ra_domain.hi);
}

Interval SdssTraceModel::NextRange(int64_t index, int64_t trace_length) {
  if (rng_.Bernoulli(cfg_.full_scan_probability)) {
    return cfg_.ra_domain;
  }
  const bool early =
      trace_length <= 0 ||
      static_cast<double>(index) <
          cfg_.regime_switch_fraction * static_cast<double>(trace_length);
  double mid = SampleMidpoint(early);
  mid = Clamp(mid, cfg_.ra_domain.lo, cfg_.ra_domain.hi);
  // Exponential-ish width: -mean * ln(U), capped.
  double width = -cfg_.mean_width_degrees * std::log(1.0 - rng_.NextDouble());
  width = std::min(width, cfg_.max_width_degrees);
  width = std::max(width, 0.1);
  double lo = mid - width / 2.0;
  double hi = mid + width / 2.0;
  if (lo < cfg_.ra_domain.lo) {
    hi += cfg_.ra_domain.lo - lo;
    lo = cfg_.ra_domain.lo;
  }
  if (hi > cfg_.ra_domain.hi) {
    lo -= hi - cfg_.ra_domain.hi;
    hi = cfg_.ra_domain.hi;
  }
  lo = std::max(lo, cfg_.ra_domain.lo);
  return Interval(lo, hi);
}

std::vector<Interval> SdssTraceModel::GenerateTrace(int64_t n) {
  std::vector<Interval> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(NextRange(i, n));
  return out;
}

AttributeHistogram SdssTraceModel::HitHistogram(
    const std::vector<Interval>& trace, const Interval& domain,
    double bin_width) {
  const int bins =
      std::max(1, static_cast<int>(std::ceil(domain.Width() / bin_width)));
  AttributeHistogram hist(domain, bins);
  for (const Interval& iv : trace) hist.AddRange(iv, 1.0);
  return hist;
}

AttributeHistogram SdssTraceModel::AccessDensity(int num_bins) const {
  AttributeHistogram hist(cfg_.ra_domain, num_bins);
  // Mix of both regimes weighted by their trace share, discretized by
  // integrating Normal CDFs over bins.
  const double early_w = cfg_.regime_switch_fraction;
  const double late_w = 1.0 - early_w;
  struct Component {
    double weight, mean, sigma;
  };
  const Component comps[] = {
      {early_w * 0.75, 250.0, 25.0}, {early_w * 0.15, 110.0, 12.0},
      {late_w * 0.60, 105.0, 10.0},  {late_w * 0.25, 250.0, 30.0},
  };
  const double uniform_w = early_w * 0.10 + late_w * 0.15;
  for (int b = 0; b < num_bins; ++b) {
    const Interval bi = hist.bin_interval(b);
    double mass = uniform_w * bi.Width() / cfg_.ra_domain.Width();
    for (const Component& c : comps) {
      mass += c.weight *
              (NormalCdf(bi.hi, c.mean, c.sigma) - NormalCdf(bi.lo, c.mean, c.sigma));
    }
    hist.AddRange(bi, std::max(mass, 0.0));
  }
  return hist;
}

Interval SdssTraceModel::MapRange(const Interval& range, const Interval& from,
                                  const Interval& to) {
  const double scale = to.Width() / from.Width();
  return Interval(to.lo + (range.lo - from.lo) * scale,
                  to.lo + (range.hi - from.lo) * scale, range.lo_inclusive,
                  range.hi_inclusive);
}

}  // namespace deepsea
