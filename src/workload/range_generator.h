#ifndef DEEPSEA_WORKLOAD_RANGE_GENERATOR_H_
#define DEEPSEA_WORKLOAD_RANGE_GENERATOR_H_

#include <limits>

#include "common/rng.h"
#include "core/interval.h"

namespace deepsea {

/// Query selectivity classes from the paper's parameter grid (Table 1):
/// the selection returns 1% (Small), 5% (Medium) or 25% (Big) of the
/// data. Over uniformly distributed data — which is what the paper's
/// synthetic instances use — the returned fraction equals the fraction
/// of the domain covered by the selection interval.
enum class Selectivity { kSmall, kMedium, kBig };

/// Skew of the selection-midpoint distribution (Table 1): Uniform,
/// Lightly skewed (Normal with sigma = 7.5% of the domain) and Heavily
/// skewed (Normal with sigma = 0.25% of the domain).
enum class Skew { kUniform, kLight, kHeavy };

const char* SelectivityName(Selectivity s);
const char* SkewName(Skew s);
double SelectivityFraction(Selectivity s);
double SkewSigmaFraction(Skew s);

/// Generates selection intervals over a numeric domain following the
/// paper's workload parameterization. Midpoints are drawn uniformly or
/// from a Normal centred at `center` (default: domain midpoint);
/// interval width is `selectivity_fraction * domain width`. Intervals
/// are clamped into the domain preserving their width where possible.
class RangeGenerator {
 public:
  struct Config {
    Interval domain{0.0, 1.0};
    double selectivity_fraction = 0.05;
    Skew skew = Skew::kUniform;
    /// Midpoint of the Normal for skewed draws; NaN = domain midpoint.
    double center = std::numeric_limits<double>::quiet_NaN();
  };

  RangeGenerator(Config config, uint64_t seed);

  /// Convenience constructor from the paper's enum grid.
  RangeGenerator(const Interval& domain, Selectivity sel, Skew skew,
                 uint64_t seed);

  const Config& config() const { return cfg_; }
  /// Re-centres the skewed midpoint distribution (used by the evolving
  /// workloads of Figs. 9-10).
  void set_center(double center) { cfg_.center = center; }

  Interval Next();

 private:
  Config cfg_;
  Rng rng_;
};

/// Generates selection intervals whose midpoints follow a Zipf
/// distribution over the domain (used by Fig. 8b to test robustness of
/// the Normal-MLE smoothing against a radically different distribution).
class ZipfRangeGenerator {
 public:
  ZipfRangeGenerator(const Interval& domain, double selectivity_fraction,
                     int num_buckets, double exponent, uint64_t seed);

  Interval Next();

 private:
  Interval domain_;
  double width_;
  int num_buckets_;
  double exponent_;
  Rng rng_;
};

}  // namespace deepsea

#endif  // DEEPSEA_WORKLOAD_RANGE_GENERATOR_H_
