#ifndef DEEPSEA_WORKLOAD_SDSS_H_
#define DEEPSEA_WORKLOAD_SDSS_H_

#include <vector>

#include "catalog/histogram.h"
#include "common/rng.h"
#include "core/interval.h"

namespace deepsea {

/// Synthetic model of the Sloan Digital Sky Survey query trace the
/// paper uses (selections on attribute `ra` of table PhotoPrimary,
/// March 2010 - March 2011). The real trace is not available, so this
/// reproduces the two published properties the DeepSea techniques
/// exploit (see DESIGN.md substitution table):
///
///  * Fig. 1 (non-uniform access): the hit histogram over `ra` has a
///    dominant hot region around 200-300 degrees and a secondary hot
///    spot near 100 degrees, with long cold tails. We model it as a
///    mixture of Normals plus a uniform floor.
///  * Fig. 2 (evolving access): the first ~30% of the trace focuses on
///    the 200-300 degree band; later queries shift toward ~100 degrees;
///    occasional queries select (nearly) the whole domain. We model a
///    regime switch at a configurable position plus a small full-scan
///    probability.
class SdssTraceModel {
 public:
  struct Config {
    Interval ra_domain{-20.0, 400.0};
    /// Fraction of the trace in the initial (200-300 degree) regime.
    double regime_switch_fraction = 0.3;
    /// Probability of a (nearly) full-domain selection.
    double full_scan_probability = 0.002;
    /// Mean selection width in degrees (widths are exponential-ish).
    double mean_width_degrees = 8.0;
    double max_width_degrees = 60.0;
  };

  explicit SdssTraceModel(uint64_t seed = 2017) : SdssTraceModel(Config{}, seed) {}
  SdssTraceModel(Config config, uint64_t seed);

  const Config& config() const { return cfg_; }

  /// Selection range of the `index`-th query (0-based) in a trace of
  /// `trace_length` queries. Deterministic given (seed, index order of
  /// calls): call sequentially for reproducible traces.
  Interval NextRange(int64_t index, int64_t trace_length);

  /// Generates a full trace of `n` selection ranges.
  std::vector<Interval> GenerateTrace(int64_t n);

  /// Aggregated hit histogram over the `ra` domain for a trace (the
  /// Fig. 1 reproduction): each range adds one hit spread over its
  /// extent per degree-bin of width `bin_width`.
  static AttributeHistogram HitHistogram(const std::vector<Interval>& trace,
                                         const Interval& domain,
                                         double bin_width);

  /// The stationary access-density histogram of the model (mixture of
  /// both regimes), useful for sampling data values whose distribution
  /// matches the access pattern — the paper samples BigBench `item_sk`
  /// values from the SDSS `ra` histogram (Section 10.1).
  AttributeHistogram AccessDensity(int num_bins) const;

  /// Linear map from the `ra` domain onto `target`; used to project
  /// SDSS selection ranges onto the BigBench item_sk domain.
  static Interval MapRange(const Interval& range, const Interval& from,
                           const Interval& to);

 private:
  double SampleMidpoint(bool early_regime);

  Config cfg_;
  Rng rng_;
};

}  // namespace deepsea

#endif  // DEEPSEA_WORKLOAD_SDSS_H_
