#include "types/schema.h"

#include "common/str_util.h"

namespace deepsea {

std::string ColumnDef::ShortName() const {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  // Exact qualified match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Unique short-name match.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].ShortName() == name) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<ColumnDef> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + DataTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace deepsea
