#ifndef DEEPSEA_TYPES_VALUE_H_
#define DEEPSEA_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace deepsea {

/// Scalar data types supported by the engine. Kept deliberately small:
/// the DeepSea techniques only need an ordered numeric partition key plus
/// enough variety (strings, bools) to express realistic analytic schemas.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kBool,
  kNull,
};

/// Human-readable type name ("INT64", ...).
const char* DataTypeName(DataType t);

/// A dynamically typed scalar value. Null is the monostate alternative.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}
  explicit Value(bool v) : v_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }

  DataType type() const;

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  bool AsBool() const { return std::get<bool>(v_); }

  /// Numeric view: int64 and double promote to double; other types are a
  /// programming error (asserts). Used for range predicates and
  /// partition keys, which are restricted to ordered numeric attributes.
  double AsNumeric() const;

  /// True when the value is int64 or double.
  bool is_numeric() const { return is_int64() || is_double(); }

  /// Total order within the same type family; numerics compare across
  /// int64/double. Null sorts first. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash suitable for hash joins / aggregation keys.
  size_t Hash() const;

  /// Rendering for debugging and golden tests.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

/// A row is a fixed-width tuple of values positionally aligned with a
/// Schema.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive combination of value hashes).
size_t HashRow(const Row& row);

}  // namespace deepsea

#endif  // DEEPSEA_TYPES_VALUE_H_
