#ifndef DEEPSEA_TYPES_SCHEMA_H_
#define DEEPSEA_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace deepsea {

/// A named, typed column. Column names are qualified with their source
/// relation ("store_sales.item_sk") so that join outputs stay
/// unambiguous; `short_name` is the part after the dot.
struct ColumnDef {
  std::string name;  ///< fully qualified, e.g. "store_sales.item_sk"
  DataType type = DataType::kInt64;

  /// Name without the relation qualifier.
  std::string ShortName() const;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns describing rows flowing through the engine.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  /// Index of the column whose qualified name equals `name`, or whose
  /// short name equals `name` if exactly one column matches. Returns
  /// nullopt when absent or ambiguous.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Concatenation (used by joins): columns of `this` then `other`.
  Schema Concat(const Schema& other) const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace deepsea

#endif  // DEEPSEA_TYPES_SCHEMA_H_
