#include "types/value.h"

#include <cassert>
#include <functional>

#include "common/str_util.h"

namespace deepsea {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kBool:
      return "BOOL";
    case DataType::kNull:
      return "NULL";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  return DataType::kBool;
}

double Value::AsNumeric() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  assert(is_double());
  return AsDouble();
}

int Value::Compare(const Value& other) const {
  // Null sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    const double a = AsNumeric();
    const double b = other.AsNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  // Heterogeneous non-comparable types: order by type id for stability.
  return static_cast<int>(type()) - static_cast<int>(other.type());
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9u;
  if (is_numeric()) {
    // Hash the numeric view so that int64(5) and double(5.0) collide,
    // consistent with Compare treating them as equal.
    const double d = AsNumeric();
    if (d == 0.0) return std::hash<double>{}(0.0);  // +0 / -0 unify
    return std::hash<double>{}(d);
  }
  if (is_string()) return std::hash<std::string>{}(AsString());
  return std::hash<bool>{}(AsBool());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) return StrFormat("%g", AsDouble());
  if (is_string()) return "'" + AsString() + "'";
  return AsBool() ? "true" : "false";
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678u;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace deepsea
