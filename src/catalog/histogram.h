#ifndef DEEPSEA_CATALOG_HISTOGRAM_H_
#define DEEPSEA_CATALOG_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/interval.h"

namespace deepsea {

/// Equi-width histogram over a numeric attribute's domain. Used (a) by
/// the catalog to describe base-table value distributions, (b) by the
/// DeepSea core to estimate fragment sizes from the relative mass of an
/// interval (paper Section 7.2 assumes uniformity *within* a fragment;
/// we refine that with histogram mass when available), and (c) by
/// workload generators to mimic the SDSS access distribution (Fig. 1).
class AttributeHistogram {
 public:
  AttributeHistogram() = default;

  /// Creates an empty histogram with `num_bins` equal-width bins over
  /// `domain`. num_bins must be >= 1 and the domain non-empty.
  AttributeHistogram(Interval domain, int num_bins);

  const Interval& domain() const { return domain_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  double total_count() const { return total_; }
  bool empty() const { return total_ <= 0.0; }

  /// Adds `weight` observations at value `x` (values outside the domain
  /// are clamped into the edge bins).
  void Add(double x, double weight = 1.0);

  /// Adds `weight` observations spread uniformly over `iv ∩ domain`.
  void AddRange(const Interval& iv, double weight);

  /// Count mass in bin i.
  double bin_count(int i) const { return counts_[i]; }

  /// The sub-domain covered by bin i (half-open except the last bin).
  Interval bin_interval(int i) const;

  /// Fraction of total mass falling inside `iv` (linear interpolation
  /// within partially covered bins). Returns 0 when the histogram is
  /// empty.
  double FractionInRange(const Interval& iv) const;

  /// Estimated absolute mass inside `iv`.
  double MassInRange(const Interval& iv) const { return total_ * FractionInRange(iv); }

  /// Boundaries b_0..b_k splitting the domain into k spans of (roughly)
  /// equal mass — the classical equi-depth partitioning the paper uses
  /// as its static baseline (Section 10.2). Returns k+1 boundary points.
  std::vector<double> EquiDepthBoundaries(int k) const;

  /// Scales all masses so the total becomes `new_total` (no-op if empty).
  void NormalizeTo(double new_total);

  std::string ToString() const;

 private:
  int BinIndex(double x) const;

  Interval domain_{0.0, 1.0};
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace deepsea

#endif  // DEEPSEA_CATALOG_HISTOGRAM_H_
