#include "catalog/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace deepsea {

AttributeHistogram::AttributeHistogram(Interval domain, int num_bins)
    : domain_(domain) {
  assert(num_bins >= 1);
  assert(!domain.IsEmpty());
  counts_.assign(static_cast<size_t>(num_bins), 0.0);
}

int AttributeHistogram::BinIndex(double x) const {
  const int n = num_bins();
  if (n == 0) return 0;
  const double w = domain_.Width();
  if (w <= 0.0) return 0;
  const double rel = (x - domain_.lo) / w;
  int idx = static_cast<int>(rel * n);
  if (idx < 0) idx = 0;
  if (idx >= n) idx = n - 1;
  return idx;
}

void AttributeHistogram::Add(double x, double weight) {
  if (counts_.empty()) return;
  counts_[static_cast<size_t>(BinIndex(x))] += weight;
  total_ += weight;
}

void AttributeHistogram::AddRange(const Interval& iv, double weight) {
  if (counts_.empty() || weight <= 0.0) return;
  const auto inter = iv.Intersect(domain_);
  if (!inter.has_value() || inter->Width() <= 0.0) {
    // Degenerate (point) range: attribute all mass to its bin.
    if (inter.has_value()) Add(inter->lo, weight);
    return;
  }
  const double total_w = inter->Width();
  for (int i = 0; i < num_bins(); ++i) {
    const double ow = bin_interval(i).OverlapWidth(*inter);
    if (ow > 0.0) counts_[static_cast<size_t>(i)] += weight * ow / total_w;
  }
  total_ += weight;
}

Interval AttributeHistogram::bin_interval(int i) const {
  const int n = num_bins();
  const double step = domain_.Width() / n;
  const double a = domain_.lo + step * i;
  const double b = (i == n - 1) ? domain_.hi : domain_.lo + step * (i + 1);
  return Interval(a, b, /*lo_inc=*/true, /*hi_inc=*/i == n - 1);
}

double AttributeHistogram::FractionInRange(const Interval& iv) const {
  if (total_ <= 0.0 || counts_.empty()) return 0.0;
  const auto inter = iv.Intersect(domain_);
  if (!inter.has_value()) return 0.0;
  double mass = 0.0;
  for (int i = 0; i < num_bins(); ++i) {
    const Interval bi = bin_interval(i);
    const double bw = bi.Width();
    if (bw <= 0.0) continue;
    const double ow = bi.OverlapWidth(*inter);
    if (ow > 0.0) mass += counts_[static_cast<size_t>(i)] * (ow / bw);
  }
  return mass / total_;
}

std::vector<double> AttributeHistogram::EquiDepthBoundaries(int k) const {
  std::vector<double> bounds;
  if (k <= 0) return bounds;
  bounds.push_back(domain_.lo);
  if (total_ <= 0.0) {
    // Fall back to equi-width when no distribution is known.
    for (int i = 1; i < k; ++i) {
      bounds.push_back(domain_.lo + domain_.Width() * i / k);
    }
    bounds.push_back(domain_.hi);
    return bounds;
  }
  const double target = total_ / k;
  double acc = 0.0;
  int next_quantile = 1;
  for (int i = 0; i < num_bins() && next_quantile < k; ++i) {
    const double c = counts_[static_cast<size_t>(i)];
    while (next_quantile < k && acc + c >= target * next_quantile) {
      // Linear interpolation inside the bin.
      const double need = target * next_quantile - acc;
      const Interval bi = bin_interval(i);
      const double frac = c > 0.0 ? need / c : 0.0;
      bounds.push_back(bi.lo + bi.Width() * frac);
      ++next_quantile;
    }
    acc += c;
  }
  while (static_cast<int>(bounds.size()) < k) bounds.push_back(domain_.hi);
  bounds.push_back(domain_.hi);
  std::sort(bounds.begin(), bounds.end());
  return bounds;
}

void AttributeHistogram::NormalizeTo(double new_total) {
  if (total_ <= 0.0) return;
  const double f = new_total / total_;
  for (double& c : counts_) c *= f;
  total_ = new_total;
}

std::string AttributeHistogram::ToString() const {
  std::string out = StrFormat("hist(domain=%s, total=%.0f): ",
                              domain_.ToString().c_str(), total_);
  for (int i = 0; i < num_bins(); ++i) {
    out += StrFormat("%.0f ", counts_[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace deepsea
