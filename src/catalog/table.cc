#include "catalog/table.h"

#include <limits>

namespace deepsea {

const AttributeHistogram* Table::GetHistogram(const std::string& column) const {
  auto it = histograms_.find(column);
  if (it != histograms_.end()) return &it->second;
  // Also try resolving the short name against the schema so callers can
  // use unqualified names.
  const auto idx = schema_.FindColumn(column);
  if (idx.has_value()) {
    it = histograms_.find(schema_.column(*idx).name);
    if (it != histograms_.end()) return &it->second;
  }
  return nullptr;
}

void Table::SetHistogram(const std::string& column, AttributeHistogram hist) {
  const auto idx = schema_.FindColumn(column);
  const std::string key = idx.has_value() ? schema_.column(*idx).name : column;
  histograms_.insert_or_assign(key, std::move(hist));
}

Status Table::BuildHistogram(const std::string& column, int num_bins) {
  DEEPSEA_ASSIGN_OR_RETURN(Interval domain, SampleMinMax(column));
  if (domain.Width() <= 0.0) {
    domain = Interval(domain.lo - 0.5, domain.hi + 0.5);
  }
  const auto idx = schema_.FindColumn(column);
  AttributeHistogram hist(domain, num_bins);
  for (const Row& row : rows_) {
    const Value& v = row[*idx];
    if (v.is_numeric()) hist.Add(v.AsNumeric());
  }
  if (logical_row_count_ > 0 && hist.total_count() > 0.0) {
    hist.NormalizeTo(static_cast<double>(logical_row_count_));
  }
  SetHistogram(column, std::move(hist));
  return Status::OK();
}

Result<Interval> Table::SampleMinMax(const std::string& column) const {
  const auto idx = schema_.FindColumn(column);
  if (!idx.has_value()) {
    return Status::NotFound("column not in table " + name_ + ": " + column);
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const Row& row : rows_) {
    const Value& v = row[*idx];
    if (!v.is_numeric()) continue;
    const double x = v.AsNumeric();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    any = true;
  }
  if (!any) {
    return Status::InvalidArgument("no numeric values in column " + column);
  }
  return Interval(lo, hi);
}

double Table::ndv(const std::string& column) const {
  auto it = ndv_.find(column);
  if (it != ndv_.end()) return it->second;
  const auto idx = schema_.FindColumn(column);
  if (idx.has_value()) {
    it = ndv_.find(schema_.column(*idx).name);
    if (it != ndv_.end()) return it->second;
  }
  return 0.0;
}

void Table::set_ndv(const std::string& column, double v) {
  const auto idx = schema_.FindColumn(column);
  const std::string key = idx.has_value() ? schema_.column(*idx).name : column;
  ndv_[key] = v;
}

Status Catalog::Register(TablePtr table) {
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table exists: " + table->name());
  }
  tables_.emplace(table->name(), std::move(table));
  return Status::OK();
}

void Catalog::Put(TablePtr table) {
  tables_.insert_or_assign(table->name(), std::move(table));
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no such table: " + name);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

double Catalog::TotalLogicalBytes() const {
  double total = 0.0;
  for (const auto& [_, t] : tables_) total += t->logical_bytes();
  return total;
}

}  // namespace deepsea
