#ifndef DEEPSEA_CATALOG_TABLE_H_
#define DEEPSEA_CATALOG_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/histogram.h"
#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace deepsea {

/// A base table or materialized intermediate result.
///
/// Tables separate two scales (see DESIGN.md "Engine scale vs cost
/// scale"): the *physical sample* (`rows()`) drives executor correctness
/// at laptop scale, while `logical_row_count()` / `logical_bytes()`
/// describe the full-size dataset (e.g. 500 GB BigBench) and drive the
/// cluster cost model. Generators keep the two consistent: the sample is
/// drawn from the same distribution whose total mass equals the logical
/// row count.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Renames the table in place. Only for tables not yet registered in
  /// a shared Catalog (the map key would go stale): PlanningDelta::Fold
  /// uses it to replace a reserved placeholder view id with the final
  /// catalog-assigned id on deferred view tables, immediately before
  /// the deferred Catalog::Put.
  void Rename(std::string name) { name_ = std::move(name); }

  // --- physical sample ---
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void ReserveRows(size_t n) { rows_.reserve(n); }

  // --- logical (cost-model) scale ---
  uint64_t logical_row_count() const { return logical_row_count_; }
  void set_logical_row_count(uint64_t n) { logical_row_count_ = n; }
  double avg_row_bytes() const { return avg_row_bytes_; }
  void set_avg_row_bytes(double b) { avg_row_bytes_ = b; }
  double logical_bytes() const {
    return static_cast<double>(logical_row_count_) * avg_row_bytes_;
  }

  // --- statistics ---
  /// Histogram of a numeric column's value distribution, used for
  /// selectivity and fragment-size estimation. Returns nullptr when no
  /// histogram was attached/built for the column.
  const AttributeHistogram* GetHistogram(const std::string& column) const;
  void SetHistogram(const std::string& column, AttributeHistogram hist);

  /// Builds an equi-width histogram with `num_bins` bins from the
  /// physical sample of numeric column `column`, scaled so that total
  /// mass equals the logical row count. Fails when the column is absent
  /// or non-numeric across sampled rows.
  Status BuildHistogram(const std::string& column, int num_bins);

  /// Min/max over the physical sample of a numeric column.
  Result<Interval> SampleMinMax(const std::string& column) const;

  /// Number of distinct values of a column at logical scale (set by
  /// generators; used for group-by cardinality estimation). Returns 0
  /// when unknown.
  double ndv(const std::string& column) const;
  void set_ndv(const std::string& column, double v);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t logical_row_count_ = 0;
  double avg_row_bytes_ = 100.0;
  std::map<std::string, AttributeHistogram> histograms_;
  std::map<std::string, double> ndv_;
};

using TablePtr = std::shared_ptr<Table>;

/// Name -> table registry shared by the planner, executor and DeepSea
/// core. Not thread-safe (the simulator is single-threaded by design for
/// determinism).
class Catalog {
 public:
  /// Registers a table; fails with AlreadyExists on name collision.
  Status Register(TablePtr table);

  /// Replaces or inserts a table unconditionally (used for materialized
  /// view sample tables, which may be refreshed).
  void Put(TablePtr table);

  /// Fails with NotFound when absent.
  Result<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Status Drop(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Total logical bytes across all registered tables.
  double TotalLogicalBytes() const;

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CATALOG_TABLE_H_
