// Tests for multi-attribute partitioning (paper Section 4 permits
// multiple partitions of one view on different attributes; Section 11
// lists partitioning on multiple attributes as future work — our
// engine supports partitions per attribute and selects among them at
// match time).

#include <set>

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "core/engine.h"
#include "plan/pushdown.h"
#include "plan/signature.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

class MultiAttrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options data;
    data.total_bytes = 100e9;
    data.sample_rows_per_fact = 400;
    data.sample_rows_per_dim = 100;
    ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_F(MultiAttrTest, Q30DHasBothSelectionContexts) {
  auto plan = BigBenchTemplates::BuildQ30D(100000, 180000, 30, 60);
  ASSERT_TRUE(plan.ok());
  const auto ctxs = ExtractSelectionContexts(*plan);
  ASSERT_EQ(ctxs.size(), 2u);
  std::set<std::string> cols = {ctxs[0].column, ctxs[1].column};
  EXPECT_TRUE(cols.count("store_sales.item_sk"));
  EXPECT_TRUE(cols.count("store_sales.sold_date"));
}

TEST_F(MultiAttrTest, Q30DSharesViewWithQ30) {
  // The projected join view under Q30D is the same as under Q30 (the
  // projection includes sold_date for both).
  auto q30 = BigBenchTemplates::Build("Q30", 0, 1000);
  auto q30d = BigBenchTemplates::BuildQ30D(0, 1000, 0, 10);
  ASSERT_TRUE(q30.ok());
  ASSERT_TRUE(q30d.ok());
  auto s1 = ComputeSignature((*q30)->child(0)->child(0), catalog_);
  auto s2 = ComputeSignature((*q30d)->child(0)->child(0), catalog_);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->ToString(), s2->ToString());
}

TEST_F(MultiAttrTest, ViewTracksPartitionsOnBothAttributes) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 6; ++i) {
    auto plan = BigBenchTemplates::BuildQ30D(100000 + i * 20, 180000 + i * 20,
                                             30, 60);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  const ViewInfo* join_view = nullptr;
  for (const ViewInfo* v : engine.views().AllViews()) {
    if (v->partitions.size() >= 2) join_view = v;
  }
  ASSERT_NE(join_view, nullptr) << "expected a view partitioned on 2 attributes";
  EXPECT_TRUE(join_view->partitions.count("store_sales.item_sk"));
  EXPECT_TRUE(join_view->partitions.count("store_sales.sold_date"));
}

TEST_F(MultiAttrTest, QueriesOnEitherDimensionAnsweredFromFragments) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.02;
  DeepSeaEngine engine(&catalog_, opts);
  // Warm both dimensions with mixed queries.
  for (int i = 0; i < 8; ++i) {
    auto plan = BigBenchTemplates::BuildQ30D(100000 + i * 20, 180000 + i * 20,
                                             0, 365);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  // A (pure) item-range query reuses the item partition.
  auto item_query = BigBenchTemplates::Build("Q30", 120000, 160000);
  ASSERT_TRUE(item_query.ok());
  auto report = engine.ProcessQuery(*item_query);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->used_view.empty());
  EXPECT_GT(report->fragments_read, 0);
  EXPECT_LT(report->best_seconds, report->base_seconds);
}

TEST_F(MultiAttrTest, BothPartitionsCountTowardPool) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.02;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 10; ++i) {
    // Alternate narrow-date and narrow-item queries to give both
    // partitions evidence.
    auto plan = (i % 2 == 0)
                    ? BigBenchTemplates::BuildQ30D(0, 400000, 100, 130)
                    : BigBenchTemplates::BuildQ30D(100000, 140000, 0, 365);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  // Pool accounting equals the simulated FS content.
  EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
              1.0 + engine.PoolBytes() * 1e-9);
}

TEST_F(MultiAttrTest, PhysicalCorrectnessWithDateSelections) {
  EngineOptions opts;
  opts.physical_execution = true;
  opts.benefit_cost_threshold = 0.02;
  DeepSeaEngine engine(&catalog_, opts);
  Executor reference(&catalog_);
  for (int i = 0; i < 8; ++i) {
    auto plan = BigBenchTemplates::BuildQ30D(80000 + i * 100, 200000 + i * 100,
                                             50, 200);
    ASSERT_TRUE(plan.ok());
    auto truth = reference.Execute(PushDownSelections(*plan, catalog_));
    ASSERT_TRUE(truth.ok());
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->physically_executed);
    // Order-insensitive comparison of result rows.
    auto canon = [](const ExecResult& r) {
      std::multiset<std::string> out;
      for (const Row& row : r.rows) {
        std::string line;
        for (const Value& v : row) line += v.ToString() + "|";
        out.insert(line);
      }
      return out;
    };
    EXPECT_EQ(canon(report->physical), canon(*truth)) << "query " << i;
  }
}

}  // namespace
}  // namespace deepsea
