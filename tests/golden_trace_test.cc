// Golden-trace regression test: a fixed 200-query SDSS-patterned
// workload is run through ProcessQuery under the DS, NP and Nectar+
// strategies, and the full QueryReport sequence is compared field by
// field against a checked-in golden file. The golden file was recorded
// at the pre-pipeline-refactor commit; any semantic drift in Algorithm 1
// (rewriting choice, candidate generation, selection, materialization
// charging, eviction) shows up as a line diff here.
//
// Regenerate (only when a behaviour change is *intended*):
//   DEEPSEA_REGEN_GOLDEN=1 ./golden_trace_test

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/engine.h"
#include "workload/bigbench.h"
#include "workload/sdss.h"

namespace deepsea {
namespace {

#ifndef DEEPSEA_GOLDEN_DIR
#define DEEPSEA_GOLDEN_DIR "tests/golden"
#endif

constexpr int kQueries = 200;
constexpr uint64_t kSeed = 2017;

// Mirrors bench/bench_util.h BaseOptions(): the paper-experiment
// configuration (eager admission, fragment-size bounding on).
EngineOptions BaseOptions() {
  EngineOptions o;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

struct GoldenStrategy {
  const char* label;
  EngineOptions options;
};

std::vector<GoldenStrategy> Strategies() {
  GoldenStrategy ds{"DS", BaseOptions()};
  ds.options.strategy = StrategyKind::kDeepSea;
  GoldenStrategy np{"NP", BaseOptions()};
  np.options.strategy = StrategyKind::kNoPartition;
  GoldenStrategy nplus{"N+", BaseOptions()};
  nplus.options.value_model = ValueModel::kNectarPlus;
  nplus.options.use_mle_smoothing = false;
  return {ds, np, nplus};
}

// The Section 10.1 workload shape: SDSS selection ranges mapped onto
// item_sk over randomly chosen join templates (same construction as
// bench::SdssWorkload, pinned here so bench tweaks cannot silently
// invalidate the golden file).
struct GoldenQuery {
  std::string template_name;
  Interval range;
};

std::vector<GoldenQuery> Workload() {
  SdssTraceModel sdss(SdssTraceModel::Config{}, kSeed);
  const auto trace = sdss.GenerateTrace(kQueries);
  const Interval ra(-20.0, 400.0);
  const Interval item_sk(0.0, 400000.0);
  Rng rng(kSeed + 1);
  const auto names = BigBenchTemplates::Names();
  std::vector<GoldenQuery> out;
  out.reserve(trace.size());
  for (const Interval& r : trace) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    out.push_back({name, SdssTraceModel::MapRange(r, ra, item_sk)});
  }
  return out;
}

BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  SdssTraceModel sdss(SdssTraceModel::Config{}, kSeed);
  o.item_sk_distribution = sdss.AccessDensity(420);
  return o;
}

// One line per QueryReport capturing every field that the simulator
// derives from Algorithm 1 decisions. Doubles use %.17g: bit-identical
// round-trip, so any floating-point divergence is caught.
std::string FormatReport(const std::string& label, const QueryReport& r) {
  std::string created;
  for (size_t i = 0; i < r.created_views.size(); ++i) {
    if (i > 0) created += ";";
    created += r.created_views[i];
  }
  return StrFormat(
      "%s,%lld,%.17g,%.17g,%.17g,%.17g,%s,%d,%s,%d,%d,%d,%.17g", label.c_str(),
      static_cast<long long>(r.query_index), r.base_seconds, r.best_seconds,
      r.materialize_seconds, r.total_seconds, r.used_view.c_str(),
      r.fragments_read, created.c_str(), r.created_fragments,
      r.evicted_fragments, r.merged_fragments, r.pool_bytes_after);
}

std::vector<std::string> ComputeTrace() {
  const auto workload = Workload();
  std::vector<std::string> lines;
  lines.reserve(workload.size() * 3);
  for (const GoldenStrategy& strat : Strategies()) {
    // Fresh catalog per strategy (identical seed => identical data), as
    // in ExperimentRunner: strategies never share state.
    Catalog catalog;
    Status gen = BigBenchDataset::Generate(DataOptions(), &catalog);
    EXPECT_TRUE(gen.ok()) << gen.ToString();
    DeepSeaEngine engine(&catalog, strat.options);
    for (const GoldenQuery& q : workload) {
      auto plan = BigBenchTemplates::Build(q.template_name, q.range.lo,
                                           q.range.hi);
      EXPECT_TRUE(plan.ok());
      auto report = engine.ProcessQuery(*plan);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      lines.push_back(FormatReport(strat.label, *report));
    }
  }
  return lines;
}

TEST(GoldenTraceTest, ReportsMatchPreRefactorTrace) {
  const std::string path =
      std::string(DEEPSEA_GOLDEN_DIR) + "/engine_trace_200.golden";
  const std::vector<std::string> actual = ComputeTrace();

  if (std::getenv("DEEPSEA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : actual) out << line << "\n";
    GTEST_SKIP() << "regenerated " << path << " (" << actual.size()
                 << " lines)";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; run with DEEPSEA_REGEN_GOLDEN=1 to create it";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) golden.push_back(line);
  }
  ASSERT_EQ(actual.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(actual[i], golden[i]) << "trace diverges at line " << i;
  }
}

}  // namespace
}  // namespace deepsea
