#include "plan/signature.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put(std::make_shared<Table>(
        "fact", Schema({{"fact.k", DataType::kInt64},
                        {"fact.v", DataType::kDouble}})));
    catalog_.Put(std::make_shared<Table>(
        "dim", Schema({{"dim.k", DataType::kInt64},
                       {"dim.g", DataType::kInt64}})));
  }

  PlanPtr JoinPlan() {
    return Join(Scan("fact"), Scan("dim"),
                Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k")));
  }

  PlanSignature Sig(const PlanPtr& p) {
    auto s = ComputeSignature(p, catalog_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return s.ok() ? *s : PlanSignature{};
  }

  Catalog catalog_;
};

TEST_F(SignatureTest, ScanSignature) {
  const PlanSignature s = Sig(Scan("fact"));
  EXPECT_EQ(s.relations, (std::vector<std::string>{"fact"}));
  EXPECT_EQ(s.output_columns.size(), 2u);
  EXPECT_FALSE(s.has_aggregate);
}

TEST_F(SignatureTest, JoinMergesRelationsAndEquivalences) {
  const PlanSignature s = Sig(JoinPlan());
  EXPECT_EQ(s.relations, (std::vector<std::string>{"dim", "fact"}));
  ASSERT_EQ(s.equiv_classes.size(), 1u);
  EXPECT_TRUE(s.equiv_classes[0].count("fact.k"));
  EXPECT_TRUE(s.equiv_classes[0].count("dim.k"));
}

TEST_F(SignatureTest, SelectionRangesAbsorbed) {
  const PlanSignature s = Sig(Select(JoinPlan(), RangePredicate("fact.k", 10, 20)));
  ASSERT_TRUE(s.ranges.count("fact.k"));
  EXPECT_EQ(s.ranges.at("fact.k").lo, 10.0);
  EXPECT_EQ(s.ranges.at("fact.k").hi, 20.0);
}

TEST_F(SignatureTest, SelectionPlacementIrrelevant) {
  // Selection above the join vs pushed below produce equal signatures.
  const PlanSignature above =
      Sig(Select(JoinPlan(), RangePredicate("fact.k", 10, 20)));
  const PlanPtr pushed_scan = Select(Scan("fact"), RangePredicate("fact.k", 10, 20));
  const PlanSignature below = Sig(Join(
      pushed_scan, Scan("dim"), Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k"))));
  EXPECT_EQ(above, below);
}

TEST_F(SignatureTest, AggregateSignature) {
  const PlanSignature s = Sig(Aggregate(
      JoinPlan(), {"dim.g"}, {{AggFunc::kSum, "fact.v", "total"}}));
  EXPECT_TRUE(s.has_aggregate);
  EXPECT_EQ(s.group_by, (std::vector<std::string>{"dim.g"}));
  EXPECT_EQ(s.agg_specs.size(), 1u);
  EXPECT_TRUE(s.output_columns.count("dim.g"));
  EXPECT_TRUE(s.output_columns.count("total"));
}

TEST_F(SignatureTest, ResidualPredicateTracked) {
  const ExprPtr res = Or(Cmp(CompareOp::kGt, Col("fact.v"), LitD(1)),
                         Cmp(CompareOp::kLt, Col("fact.v"), LitD(-1)));
  const PlanSignature s = Sig(Select(JoinPlan(), res));
  EXPECT_EQ(s.residuals.size(), 1u);
  ASSERT_EQ(s.residual_exprs.size(), 1u);
}

// --- Subsumption matrix ---

TEST_F(SignatureTest, IdenticalSignaturesMatch) {
  const PlanSignature v = Sig(JoinPlan());
  EXPECT_TRUE(SignatureSubsumes(v, v).matches);
}

TEST_F(SignatureTest, WiderViewRangeMatches) {
  const PlanSignature v = Sig(Select(JoinPlan(), RangePredicate("fact.k", 0, 100)));
  const PlanSignature q = Sig(Select(JoinPlan(), RangePredicate("fact.k", 10, 20)));
  EXPECT_TRUE(SignatureSubsumes(v, q).matches);
  // And NOT the other way around.
  EXPECT_FALSE(SignatureSubsumes(q, v).matches);
}

TEST_F(SignatureTest, UnconstrainedViewMatchesConstrainedQuery) {
  const PlanSignature v = Sig(JoinPlan());
  const PlanSignature q = Sig(Select(JoinPlan(), RangePredicate("fact.k", 10, 20)));
  EXPECT_TRUE(SignatureSubsumes(v, q).matches);
}

TEST_F(SignatureTest, DifferentRelationsNoMatch) {
  const PlanSignature v = Sig(Scan("fact"));
  const PlanSignature q = Sig(Scan("dim"));
  EXPECT_FALSE(SignatureSubsumes(v, q).matches);
}

TEST_F(SignatureTest, ViewWithExtraResidualNoMatch) {
  const ExprPtr res = Or(Cmp(CompareOp::kGt, Col("fact.v"), LitD(1)),
                         Cmp(CompareOp::kLt, Col("fact.v"), LitD(-1)));
  const PlanSignature v = Sig(Select(JoinPlan(), res));
  const PlanSignature q = Sig(JoinPlan());
  EXPECT_FALSE(SignatureSubsumes(v, q).matches);
  // Query with the residual CAN use the view carrying it.
  const PlanSignature q2 = Sig(Select(JoinPlan(), res));
  EXPECT_TRUE(SignatureSubsumes(v, q2).matches);
}

TEST_F(SignatureTest, AggregateMismatchNoMatch) {
  const PlanSignature v = Sig(JoinPlan());
  const PlanSignature q = Sig(Aggregate(
      JoinPlan(), {"dim.g"}, {{AggFunc::kSum, "fact.v", "total"}}));
  EXPECT_FALSE(SignatureSubsumes(v, q).matches);
  EXPECT_FALSE(SignatureSubsumes(q, v).matches);
}

TEST_F(SignatureTest, EqualAggregatesMatch) {
  const PlanPtr agg = Aggregate(JoinPlan(), {"dim.g"},
                                {{AggFunc::kSum, "fact.v", "total"}});
  EXPECT_TRUE(SignatureSubsumes(Sig(agg), Sig(agg)).matches);
}

TEST_F(SignatureTest, AggregateCompensationOnlyOnGroupBy) {
  const PlanPtr view_agg = Aggregate(JoinPlan(), {"dim.g"},
                                     {{AggFunc::kSum, "fact.v", "total"}});
  // Query additionally restricts dim.g (a group-by column): OK.
  const PlanPtr q_ok = Aggregate(Select(JoinPlan(), RangePredicate("dim.g", 0, 5)),
                                 {"dim.g"}, {{AggFunc::kSum, "fact.v", "total"}});
  EXPECT_TRUE(SignatureSubsumes(Sig(view_agg), Sig(q_ok)).matches);
  // Query restricts fact.k (aggregated away): cannot compensate.
  const PlanPtr q_bad = Aggregate(
      Select(JoinPlan(), RangePredicate("fact.k", 0, 5)), {"dim.g"},
      {{AggFunc::kSum, "fact.v", "total"}});
  EXPECT_FALSE(SignatureSubsumes(Sig(view_agg), Sig(q_bad)).matches);
}

TEST_F(SignatureTest, ViewConstrainingUnconstrainedColumnNoMatch) {
  const PlanSignature v = Sig(Select(JoinPlan(), RangePredicate("fact.v", 0, 1)));
  const PlanSignature q = Sig(Select(JoinPlan(), RangePredicate("fact.k", 10, 20)));
  EXPECT_FALSE(SignatureSubsumes(v, q).matches);
}

TEST_F(SignatureTest, ProjectionDropsNeededColumnNoMatch) {
  // View projects away fact.v which the query outputs.
  const PlanPtr view = Project(JoinPlan(), {Col("fact.k")}, {"fact.k"});
  const PlanSignature v = Sig(view);
  const PlanSignature q = Sig(JoinPlan());
  EXPECT_FALSE(SignatureSubsumes(v, q).matches);
}

TEST_F(SignatureTest, CanonicalStringStable) {
  const PlanSignature a = Sig(Select(JoinPlan(), RangePredicate("fact.k", 1, 2)));
  const PlanSignature b = Sig(Select(JoinPlan(), RangePredicate("fact.k", 1, 2)));
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST_F(SignatureTest, ClassOfFallsBackToSingleton) {
  const PlanSignature s = Sig(JoinPlan());
  EXPECT_EQ(s.ClassOf("fact.v"), (std::set<std::string>{"fact.v"}));
  EXPECT_EQ(s.ClassOf("fact.k").size(), 2u);
}

}  // namespace
}  // namespace deepsea
