// Direct unit tests for the staged query pipeline: each of the four
// stage components (RewritePlanner, CandidateGenerator,
// SelectionPlanner, PoolManager) is constructed and exercised
// standalone — without a DeepSeaEngine — plus coverage for the
// QueryContext cover lookup, the EngineObserver seam, and mid-workload
// SaveState/LoadState continuation across the new stage boundaries.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/candidate_generator.h"
#include "core/engine.h"
#include "core/pool_manager.h"
#include "core/query_context.h"
#include "core/rewrite_planner.h"
#include "core/selection_planner.h"
#include "exp/metrics.h"
#include "exp/trace.h"
#include "workload/bigbench.h"
#include "workload/sdss.h"

namespace deepsea {
namespace {

EngineOptions BaseOptions() {
  EngineOptions o;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  return o;
}

PlanPtr MakeQuery(const std::string& template_name, double lo, double hi) {
  auto plan = BigBenchTemplates::Build(template_name, lo, hi);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// ---------------------------------------------------------------------------
// QueryContext

TEST(QueryContextTest, CoverLookupMatchesExactIntervalsOnly) {
  QueryContext ctx(nullptr, 1);
  EXPECT_FALSE(ctx.CoverContains(Interval(0.0, 1.0)));

  std::vector<Interval> cover = {
      Interval(10.0, 20.0, true, false),
      Interval(0.0, 10.0, true, true),
      Interval(20.0, 30.0, false, true),
  };
  ctx.SetCover("v1", "a", cover);
  EXPECT_EQ(ctx.cover_view(), "v1");
  EXPECT_EQ(ctx.cover_attr(), "a");
  for (const Interval& iv : cover) {
    EXPECT_TRUE(ctx.CoverContains(iv)) << iv.ToString();
  }
  // Same endpoints, different openness: not a member.
  EXPECT_FALSE(ctx.CoverContains(Interval(10.0, 20.0, true, true)));
  EXPECT_FALSE(ctx.CoverContains(Interval(0.0, 10.0, false, true)));
  // Different endpoints.
  EXPECT_FALSE(ctx.CoverContains(Interval(0.0, 20.0, true, true)));

  ctx.ClearCover();
  EXPECT_TRUE(ctx.cover().empty());
  EXPECT_FALSE(ctx.CoverContains(cover[0]));
}

TEST(QueryContextTest, CoverLookupScalesToManyFragments) {
  QueryContext ctx(nullptr, 1);
  std::vector<Interval> cover;
  for (int i = 0; i < 1000; ++i) {
    cover.push_back(Interval(i * 10.0, i * 10.0 + 10.0, true, false));
  }
  ctx.SetCover("v1", "a", cover);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ctx.CoverContains(Interval(i * 10.0, i * 10.0 + 10.0, true,
                                           false)));
    EXPECT_FALSE(ctx.CoverContains(Interval(i * 10.0 + 1.0, i * 10.0 + 10.0,
                                            true, false)));
  }
}

// ---------------------------------------------------------------------------
// Stage components, constructed standalone (no DeepSeaEngine).

class PipelineStageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_ = BaseOptions();
    Status gen = BigBenchDataset::Generate(DataOptions(), &catalog_);
    ASSERT_TRUE(gen.ok()) << gen.ToString();
    cluster_ = std::make_unique<ClusterModel>(options_.cluster);
    estimator_ = std::make_unique<PlanCostEstimator>(cluster_.get(), &catalog_,
                                                     options_.estimator);
    decay_ = std::make_unique<DecayFunction>(options_.decay);
    mle_ = std::make_unique<MleFragmentModel>(options_.mle);
    pool_ = std::make_unique<PoolManager>(&catalog_, &options_, cluster_.get(),
                                          estimator_.get());
    // Driving the stages directly (no engine): hold the pool's commit
    // section for the whole test — the guard is the token that unlocks
    // stat()/fs()/rewrite_index() and satisfies the mutators' asserts.
    commit_ = pool_->BeginCommit();
    rewriter_ = std::make_unique<RewritePlanner>(
        &catalog_, estimator_.get(), pool_->stat(commit_),
        pool_->rewrite_index(commit_));
    generator_ = std::make_unique<CandidateGenerator>(
        &catalog_, &options_, cluster_.get(), pool_->stat(commit_),
        pool_->rewrite_index(commit_), pool_.get());
    selector_ = std::make_unique<SelectionPlanner>(
        &catalog_, &options_, cluster_.get(), decay_.get(), mle_.get(),
        pool_->stat(commit_));
  }

  // Drives one query through all four stages (the orchestration
  // DeepSeaEngine::ProcessQuery performs), returning the report.
  QueryReport RunPipeline(const PlanPtr& query) {
    const int64_t clock = pool_->Tick(commit_);
    QueryReport report;
    report.query_index = clock;
    QueryContext ctx(query, clock);
    ctx.InitPlanning(catalog_, pool_->stat(commit_));
    EXPECT_TRUE(rewriter_->PlanBase(&ctx, &report).ok());
    EXPECT_TRUE(rewriter_->PlanBest(&ctx, &report).ok());
    const PlanPtr candidate_plan =
        report.used_view.empty() ? ctx.query : ctx.executed_plan;
    generator_->RegisterViewCandidates(candidate_plan, report.base_seconds,
                                       &ctx);
    generator_->RegisterPartitionCandidates(&ctx);
    SelectionDecision decision =
        selector_->PlanSelection(ctx, report.base_seconds).decision;
    EXPECT_TRUE(pool_->Apply(decision, ctx, &report).ok());
    report.total_seconds = report.best_seconds + report.materialize_seconds;
    report.pool_bytes_after = pool_->PoolBytes();
    return report;
  }

  Catalog catalog_;
  EngineOptions options_;
  std::unique_ptr<ClusterModel> cluster_;
  std::unique_ptr<PlanCostEstimator> estimator_;
  std::unique_ptr<DecayFunction> decay_;
  std::unique_ptr<MleFragmentModel> mle_;
  std::unique_ptr<PoolManager> pool_;
  // Declared after pool_ so the guard releases before the pool dies.
  CommitGuard commit_;
  std::unique_ptr<RewritePlanner> rewriter_;
  std::unique_ptr<CandidateGenerator> generator_;
  std::unique_ptr<SelectionPlanner> selector_;
};

TEST_F(PipelineStageTest, RewritePlannerComputesBaseThenPicksViewRewriting) {
  const std::string name = BigBenchTemplates::Names()[0];
  const PlanPtr query = MakeQuery(name, 1000.0, 150000.0);

  // First query: no views exist, so the base plan is the best plan.
  QueryContext ctx(query, 1);
  ctx.InitPlanning(catalog_, pool_->stat(commit_));
  QueryReport report;
  ASSERT_TRUE(rewriter_->PlanBase(&ctx, &report).ok());
  EXPECT_NE(ctx.base_plan, nullptr);
  EXPECT_EQ(ctx.executed_plan, ctx.base_plan);
  EXPECT_GT(report.base_seconds, 0.0);
  EXPECT_EQ(report.best_seconds, report.base_seconds);
  ASSERT_TRUE(rewriter_->PlanBest(&ctx, &report).ok());
  EXPECT_TRUE(report.used_view.empty());
  EXPECT_TRUE(ctx.cover_view().empty());

  // Repeat the query until its view materializes; afterwards the
  // planner must answer from the view, cheaper than the base plan.
  bool answered_from_view = false;
  for (int i = 0; i < 6 && !answered_from_view; ++i) {
    const QueryReport r = RunPipeline(query);
    answered_from_view = !r.used_view.empty();
    if (answered_from_view) {
      EXPECT_LT(r.best_seconds, r.base_seconds);
      EXPECT_GT(r.fragments_read, 0);
    }
  }
  EXPECT_TRUE(answered_from_view);
}

TEST_F(PipelineStageTest, CandidateGeneratorRegistersViewsAndPartitions) {
  const std::string name = BigBenchTemplates::Names()[0];
  const PlanPtr query = MakeQuery(name, 1000.0, 150000.0);

  QueryContext ctx(query, 1);
  ctx.InitPlanning(catalog_, pool_->stat(commit_));
  QueryReport report;
  ASSERT_TRUE(rewriter_->PlanBase(&ctx, &report).ok());
  generator_->RegisterViewCandidates(ctx.query, report.base_seconds, &ctx);
  ASSERT_FALSE(ctx.view_candidates.empty());
  // Every candidate entered the query's PlanningDelta — its planning
  // catalog carries the estimated view table — while the shared STAT
  // and the real catalog stay untouched until the delta folds.
  for (const ViewCandidate& c : ctx.view_candidates) {
    EXPECT_EQ(pool_->stat(commit_)->Get(c.view->id), nullptr);
    EXPECT_FALSE(catalog_.Contains(c.view->id));
    EXPECT_TRUE(ctx.delta()->planning_catalog()->Contains(c.view->id));
    EXPECT_TRUE(ctx.delta()->OwnsView(c.view));
    EXPECT_GT(c.view->stats.size_bytes, 0.0);
  }
  // The join feeding the query's item_sk selection is an under-select
  // candidate (Section 10.2).
  bool any_under_select = false;
  for (const ViewCandidate& c : ctx.view_candidates) {
    any_under_select = any_under_select || c.under_select;
  }
  EXPECT_TRUE(any_under_select);

  generator_->RegisterPartitionCandidates(&ctx);
  // The selection endpoint refined some view's pending fragmentation
  // (visible through the delta's partition overlay).
  bool any_pending_refined = false;
  for (ViewInfo* v : ctx.delta()->AllViews()) {
    for (const std::string& attr : ctx.delta()->PartitionAttrs(v)) {
      PartitionState* part = ctx.delta()->Partition(v, attr);
      any_pending_refined =
          any_pending_refined || (part != nullptr && part->pending.size() > 1);
    }
  }
  EXPECT_TRUE(any_pending_refined);

  // Folding (an empty decision suffices) publishes the buffered
  // registrations: the views land in STAT and the relational catalog
  // with their ViewInfo addresses preserved.
  QueryReport fold_report;
  ASSERT_TRUE(pool_->Apply(SelectionDecision(), ctx, &fold_report).ok());
  for (const ViewCandidate& c : ctx.view_candidates) {
    EXPECT_EQ(pool_->stat(commit_)->Get(c.view->id), c.view);
    EXPECT_TRUE(catalog_.Contains(c.view->id));
  }
}

TEST_F(PipelineStageTest, SelectionPlannerIsSideEffectFreeUntilApply) {
  const std::string name = BigBenchTemplates::Names()[0];
  const PlanPtr query = MakeQuery(name, 1000.0, 150000.0);

  const int64_t clock = pool_->Tick(commit_);
  QueryContext ctx(query, clock);
  ctx.InitPlanning(catalog_, pool_->stat(commit_));
  QueryReport report;
  report.query_index = clock;
  ASSERT_TRUE(rewriter_->PlanBase(&ctx, &report).ok());
  ASSERT_TRUE(rewriter_->PlanBest(&ctx, &report).ok());
  generator_->RegisterViewCandidates(ctx.query, report.base_seconds, &ctx);
  generator_->RegisterPartitionCandidates(&ctx);

  const double pool_before = pool_->PoolBytes();
  const size_t files_before = pool_->fs().List().size();
  SelectionDecision decision =
      selector_->PlanSelection(ctx, report.base_seconds).decision;
  // Planning decides but does not touch the pool.
  EXPECT_EQ(pool_->PoolBytes(), pool_before);
  EXPECT_EQ(pool_->fs().List().size(), files_before);
  ASSERT_FALSE(decision.empty());
  bool any_materialize = false;
  for (const SelectionAction& a : decision.actions) {
    any_materialize =
        any_materialize || a.kind != SelectionAction::Kind::kEvictFragment;
  }
  EXPECT_TRUE(any_materialize);

  // Apply executes the decision: content lands in the pool and the
  // materialization time is charged.
  ASSERT_TRUE(pool_->Apply(decision, ctx, &report).ok());
  EXPECT_GT(pool_->PoolBytes(), pool_before);
  EXPECT_GT(pool_->fs().List().size(), files_before);
  EXPECT_GT(report.materialize_seconds, 0.0);
  EXPECT_GT(report.created_fragments + static_cast<int>(
                report.created_views.size()), 0);
}

TEST_F(PipelineStageTest, PoolManagerEvictsEverythingUnderZeroBudget) {
  const std::string name = BigBenchTemplates::Names()[0];
  // Fill the pool.
  for (int i = 0; i < 4; ++i) {
    RunPipeline(MakeQuery(name, 1000.0, 150000.0));
  }
  ASSERT_GT(pool_->PoolBytes(), 0.0);
  ASSERT_FALSE(pool_->fs().List("pool/").empty());

  // Shrink S_max to zero: the next selection round rejects all pool
  // content and Apply evicts it.
  options_.pool_limit_bytes = 0.0;
  const QueryReport report = RunPipeline(MakeQuery(name, 1000.0, 150000.0));
  EXPECT_GT(report.evicted_fragments, 0);
  EXPECT_EQ(pool_->PoolBytes(), 0.0);
  EXPECT_TRUE(pool_->fs().List("pool/").empty());
}

// ---------------------------------------------------------------------------
// Observer seam

TEST(EngineObserverTest, StagesAndPoolEventsReachTheObserver) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 2e9;  // tight: force evictions too
  DeepSeaEngine engine(&catalog, options);

  QueryTrace trace;
  TraceObserver observer("DS", &trace);
  engine.set_observer(&observer);

  const auto names = BigBenchTemplates::Names();
  Rng rng(11);
  const int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double lo = rng.Uniform(0.0, 200000.0);
    auto plan = BigBenchTemplates::Build(name, lo, lo + 50000.0);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }

  // Every query passed through every always-on stage exactly once.
  EXPECT_EQ(observer.queries(), kQueries);
  EXPECT_EQ(trace.size(), static_cast<size_t>(kQueries));
  for (EngineStage s : {EngineStage::kRewrite, EngineStage::kCandidates,
                        EngineStage::kSelection, EngineStage::kApply}) {
    EXPECT_EQ(observer.stage(s).calls, kQueries) << EngineStageName(s);
    EXPECT_GE(observer.stage(s).wall_seconds, 0.0);
  }
  // Merge is disabled, physical execution off.
  EXPECT_EQ(observer.stage(EngineStage::kMerge).calls, 0);
  EXPECT_EQ(observer.stage(EngineStage::kPhysical).calls, 0);
  // The rewrite stage reports the plan cost chosen at Q_best time (the
  // later "unpushed" re-estimate can still revise best_seconds, so this
  // is a lower bound of the executed total, not an exact match).
  EXPECT_GT(observer.stage(EngineStage::kRewrite).sim_seconds, 0.0);
  EXPECT_LE(observer.stage(EngineStage::kRewrite).sim_seconds,
            engine.totals().total_seconds -
                engine.totals().materialize_seconds + 1e-9);
  // Apply's simulated charge is the materialization total (no merge).
  EXPECT_NEAR(observer.stage(EngineStage::kApply).sim_seconds,
              engine.totals().materialize_seconds,
              1e-9 * std::max(1.0, engine.totals().materialize_seconds));

  // Pool mutation events mirror the engine's counters (overlapping
  // fragments: no splits; merge off: every OnEvict is a policy evict).
  EXPECT_EQ(observer.fragments_materialized(),
            engine.totals().fragments_created);
  EXPECT_EQ(observer.views_materialized(), engine.totals().views_created);
  EXPECT_EQ(observer.evictions(), engine.totals().fragments_evicted);
  EXPECT_GT(observer.evictions(), 0);
  EXPECT_EQ(observer.merges(), 0);

  const std::string csv = observer.StageSummaryCsv();
  EXPECT_NE(csv.find("DS,rewrite,"), std::string::npos);
  EXPECT_NE(csv.find("DS,apply,"), std::string::npos);
}

TEST(EngineObserverTest, DetachingTheObserverSilencesIt) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, BaseOptions());
  TraceObserver observer("DS", nullptr);
  engine.set_observer(&observer);
  auto plan = BigBenchTemplates::Build(BigBenchTemplates::Names()[0], 0.0,
                                       100000.0);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  EXPECT_EQ(observer.queries(), 1);
  engine.set_observer(nullptr);
  ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  EXPECT_EQ(observer.queries(), 1);  // unchanged after detach
}

// StageScope's contract (engine.cc): wall-clock is measured only while
// an observer is attached, and observers never influence the simulated
// results. Three engines over identically seeded catalogs — bare,
// TraceObserver, multicast(Trace + Metrics) — must produce identical
// QueryReport sim-time fields for the same workload.
TEST(EngineObserverTest, AttachingObserversDoesNotChangeSimTime) {
  const auto names = BigBenchTemplates::Names();
  Rng rng(23);
  std::vector<PlanPtr> workload;
  for (int i = 0; i < 25; ++i) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double lo = rng.Uniform(0.0, 200000.0);
    workload.push_back(MakeQuery(name, lo, lo + 60000.0));
  }

  auto run = [&](EngineObserver* observer) {
    Catalog catalog;
    EXPECT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
    DeepSeaEngine engine(&catalog, BaseOptions());
    engine.set_observer(observer);
    std::vector<std::string> lines;
    for (size_t i = 0; i < workload.size(); ++i) {
      // Detach mid-run too: the report stream must not notice.
      if (observer != nullptr && i == workload.size() / 2) {
        engine.set_observer(nullptr);
      }
      if (observer != nullptr && i == workload.size() / 2 + 1) {
        engine.set_observer(observer);
      }
      auto report = engine.ProcessQuery(workload[i]);
      EXPECT_TRUE(report.ok());
      if (report.ok()) {
        lines.push_back(StrFormat(
            "%.17g,%.17g,%.17g,%.17g,%s,%d,%.17g", report->base_seconds,
            report->best_seconds, report->materialize_seconds,
            report->total_seconds, report->used_view.c_str(),
            report->fragments_read, report->pool_bytes_after));
      }
    }
    return lines;
  };

  const std::vector<std::string> bare = run(nullptr);
  TraceObserver trace("DS", nullptr);
  const std::vector<std::string> traced = run(&trace);
  MetricsObserver metrics;
  TraceObserver trace2("DS", nullptr);
  MulticastObserver multicast({&trace2, &metrics});
  const std::vector<std::string> multicasted = run(&multicast);

  ASSERT_EQ(bare.size(), traced.size());
  ASSERT_EQ(bare.size(), multicasted.size());
  for (size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(traced[i], bare[i]) << "TraceObserver perturbed query " << i;
    EXPECT_EQ(multicasted[i], bare[i]) << "multicast perturbed query " << i;
  }
}

// ---------------------------------------------------------------------------
// Mid-workload SaveState/LoadState continuation (across the new
// PoolManager seam): a run interrupted at query 60 and resumed in a
// fresh engine must produce exactly the same remaining reports as the
// uninterrupted run.

std::string ReportLine(const QueryReport& r) {
  std::string created;
  for (size_t i = 0; i < r.created_views.size(); ++i) {
    if (i > 0) created += ";";
    created += r.created_views[i];
  }
  return StrFormat("%lld,%.17g,%.17g,%.17g,%.17g,%s,%d,%s,%d,%d,%.17g",
                   static_cast<long long>(r.query_index), r.base_seconds,
                   r.best_seconds, r.materialize_seconds, r.total_seconds,
                   r.used_view.c_str(), r.fragments_read, created.c_str(),
                   r.created_fragments, r.evicted_fragments,
                   r.pool_bytes_after);
}

TEST(SaveLoadContinuationTest, MidWorkloadRoundTripMatchesUninterruptedRun) {
  constexpr int kQueries = 120;
  constexpr int kCut = 60;
  constexpr uint64_t kSeed = 2017;

  // SDSS-patterned workload (same construction as the golden trace).
  SdssTraceModel sdss(SdssTraceModel::Config{}, kSeed);
  const auto ranges = sdss.GenerateTrace(kQueries);
  const Interval ra(-20.0, 400.0);
  const Interval item_sk(0.0, 400000.0);
  Rng rng(kSeed + 1);
  const auto names = BigBenchTemplates::Names();
  std::vector<PlanPtr> workload;
  for (const Interval& r : ranges) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const Interval mapped = SdssTraceModel::MapRange(r, ra, item_sk);
    workload.push_back(MakeQuery(name, mapped.lo, mapped.hi));
  }

  // Uninterrupted run.
  Catalog catalog_a;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog_a).ok());
  DeepSeaEngine engine_a(&catalog_a, BaseOptions());
  std::vector<std::string> tail_a;
  for (int i = 0; i < kQueries; ++i) {
    auto report = engine_a.ProcessQuery(workload[i]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (i >= kCut) tail_a.push_back(ReportLine(*report));
  }

  // Interrupted run: process the first half, save, resume in a fresh
  // engine over a fresh (identically seeded) catalog.
  Catalog catalog_b;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog_b).ok());
  DeepSeaEngine engine_b(&catalog_b, BaseOptions());
  for (int i = 0; i < kCut; ++i) {
    ASSERT_TRUE(engine_b.ProcessQuery(workload[i]).ok());
  }
  auto state = engine_b.SaveState();
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  Catalog catalog_c;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog_c).ok());
  DeepSeaEngine engine_c(&catalog_c, BaseOptions());
  ASSERT_TRUE(engine_c.LoadState(*state).ok());
  EXPECT_EQ(engine_c.now(), kCut);
  EXPECT_EQ(engine_c.PoolBytes(), engine_b.PoolBytes());

  std::vector<std::string> tail_c;
  for (int i = kCut; i < kQueries; ++i) {
    auto report = engine_c.ProcessQuery(workload[i]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    tail_c.push_back(ReportLine(*report));
  }

  ASSERT_EQ(tail_a.size(), tail_c.size());
  for (size_t i = 0; i < tail_a.size(); ++i) {
    EXPECT_EQ(tail_c[i], tail_a[i]) << "continuation diverges at query "
                                    << (kCut + i + 1);
  }
  // Aggregates over the continuation match the uninterrupted engine's
  // second half too.
  EXPECT_EQ(engine_c.totals().queries, kQueries - kCut);
  EXPECT_EQ(engine_c.PoolBytes(), engine_a.PoolBytes());
}

}  // namespace
}  // namespace deepsea
