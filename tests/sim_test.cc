#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/runtime_estimator.h"

namespace deepsea {
namespace {

constexpr double kMB = 1024.0 * 1024.0;
constexpr double kGB = 1024.0 * kMB;

TEST(ClusterModelTest, MapTasksPerBlock) {
  ClusterModel m;
  const double block = m.config().block_bytes;
  EXPECT_EQ(m.MapTasksForFile(0), 0);
  EXPECT_EQ(m.MapTasksForFile(1), 1);
  EXPECT_EQ(m.MapTasksForFile(block), 1);
  EXPECT_EQ(m.MapTasksForFile(block + 1), 2);
  EXPECT_EQ(m.MapTasksForFiles({block, block, 1}), 3);
}

TEST(ClusterModelTest, SmallFilesPayStartupPerFile) {
  ClusterModel m;
  // Same bytes, one file vs 60 files: the 60-file layout needs 60
  // tasks' worth of startup spread over the slots.
  const double total = 60.0 * kMB;
  const double one = m.MapPhaseSeconds({total});
  std::vector<double> many(60, kMB);
  const double sixty = m.MapPhaseSeconds(many);
  EXPECT_GT(sixty, 0.0);
  EXPECT_GE(one, 0.0);
  // One file of 60MB is a single task: startup + io. 60 files fit in one
  // wave (186 slots) so the wave time is startup + 1MB io, which is
  // LOWER per wave; but with more waves than slots the effect reverses.
  std::vector<double> very_many(600, kMB);
  const double six_hundred = m.MapPhaseSeconds(very_many);
  EXPECT_GT(six_hundred, sixty);
}

TEST(ClusterModelTest, WaveScheduling) {
  ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.map_slots_per_worker = 2;
  cfg.task_startup_seconds = 1.0;
  cfg.read_bytes_per_second = kMB;
  cfg.worker_read_bytes_per_second = 2.0 * kMB;  // 2 slots saturate
  cfg.block_bytes = kMB;
  cfg.file_open_seconds = 0.0;  // isolate wave behaviour
  ClusterModel m(cfg);
  // 4 tasks of 1MB on 2 slots: 2 waves of startup (2s) + 4MB at the
  // 2MB/s cluster cap (2s) = 4s.
  EXPECT_DOUBLE_EQ(m.MapPhaseSeconds({kMB, kMB, kMB, kMB}), 4.0);
  // 2 tasks: 1 wave (1s) + 2MB / 2MB/s (1s) = 2s.
  EXPECT_DOUBLE_EQ(m.MapPhaseSeconds({kMB, kMB}), 2.0);
}

TEST(ClusterModelTest, PerFileOpenCost) {
  ClusterConfig cfg;
  cfg.file_open_seconds = 0.5;
  // A single task already saturates the cluster cap, so file layout
  // changes only the open cost, not the bandwidth.
  cfg.read_bytes_per_second = cfg.cluster_read_bytes_per_second();
  ClusterModel m(cfg);
  const double one = m.MapPhaseSeconds({10 * kMB});
  const double split = m.MapPhaseSeconds({5 * kMB, 5 * kMB});
  EXPECT_NEAR(split - one, 0.5, 1e-9);
  // Empty files do not pay the open cost.
  EXPECT_DOUBLE_EQ(m.MapPhaseSeconds({10 * kMB, 0.0}), one);
}

TEST(ClusterModelTest, WriteSlowerThanRead) {
  ClusterModel m;
  const double bytes = 10 * kGB;
  EXPECT_GT(m.WriteSeconds(bytes), m.TempWriteSeconds(bytes));
  EXPECT_GT(m.WriteSeconds(bytes), 0.0);
}

TEST(ClusterModelTest, PartitionedWriteAddsPerFileOverhead) {
  ClusterModel m;
  const double bytes = kGB;
  const double one = m.PartitionedWriteSeconds(bytes, 1);
  const double sixty = m.PartitionedWriteSeconds(bytes, 60);
  EXPECT_NEAR(sixty - one, 59.0 * m.config().per_file_overhead_seconds, 1e-9);
}

TEST(ClusterModelTest, ZeroBytesZeroCost) {
  ClusterModel m;
  EXPECT_EQ(m.MapPhaseSeconds({}), 0.0);
  EXPECT_EQ(m.ShuffleSeconds(0), 0.0);
  EXPECT_EQ(m.WriteSeconds(0), 0.0);
}

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Table>(
        "fact", Schema({{"fact.k", DataType::kInt64},
                        {"fact.v", DataType::kDouble}}));
    fact->set_logical_row_count(100000000);  // 100M rows
    fact->set_avg_row_bytes(100);
    AttributeHistogram hist(Interval(0, 1000), 100);
    hist.AddRange(Interval(0, 1000), 100000000);
    fact->SetHistogram("fact.k", hist);
    fact->set_ndv("fact.k", 1000);
    catalog_.Put(fact);

    auto dim = std::make_shared<Table>(
        "dim", Schema({{"dim.k", DataType::kInt64},
                       {"dim.g", DataType::kInt64}}));
    dim->set_logical_row_count(1000);
    dim->set_avg_row_bytes(50);
    dim->set_ndv("dim.g", 40);
    catalog_.Put(dim);
  }

  Catalog catalog_;
  ClusterModel cluster_;
};

TEST_F(CostModelTest, ScanCostScalesWithBytes) {
  PlanCostEstimator est(&cluster_, &catalog_);
  auto fact_cost = est.Estimate(Scan("fact"));
  auto dim_cost = est.Estimate(Scan("dim"));
  ASSERT_TRUE(fact_cost.ok());
  ASSERT_TRUE(dim_cost.ok());
  EXPECT_GT(fact_cost->seconds, dim_cost->seconds);
  EXPECT_DOUBLE_EQ(fact_cost->out_bytes, 1e10);
  EXPECT_EQ(fact_cost->map_tasks,
            cluster_.MapTasksForFile(1e10));
}

TEST_F(CostModelTest, SelectivityFromHistogram) {
  PlanCostEstimator est(&cluster_, &catalog_);
  auto sel = est.EstimateSelectivity(RangePredicate("fact.k", 0, 100));
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(*sel, 0.1, 1e-6);
}

TEST_F(CostModelTest, SelectReducesRowsNotScanCost) {
  PlanCostEstimator est(&cluster_, &catalog_);
  auto scan = est.Estimate(Scan("fact"));
  auto filtered = est.Estimate(Select(Scan("fact"), RangePredicate("fact.k", 0, 100)));
  ASSERT_TRUE(filtered.ok());
  EXPECT_NEAR(filtered->out_rows, scan->out_rows * 0.1, scan->out_rows * 0.001);
  EXPECT_DOUBLE_EQ(filtered->seconds, scan->seconds);  // fused selection
}

TEST_F(CostModelTest, JoinAddsShuffleAndJobOverhead) {
  PlanCostEstimator est(&cluster_, &catalog_);
  auto join = est.Estimate(Join(Scan("fact"), Scan("dim"),
                                Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k"))));
  auto scan = est.Estimate(Scan("fact"));
  ASSERT_TRUE(join.ok());
  EXPECT_GT(join->seconds, scan->seconds);
  EXPECT_EQ(join->num_jobs, 1);
  EXPECT_GT(join->bytes_shuffled, 0.0);
}

TEST_F(CostModelTest, PushedDownSelectionShrinksJoinCost) {
  PlanCostEstimator est(&cluster_, &catalog_);
  const ExprPtr join_cond = Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k"));
  auto pushed = est.Estimate(Join(
      Select(Scan("fact"), RangePredicate("fact.k", 0, 10)), Scan("dim"), join_cond));
  auto unpushed = est.Estimate(
      Select(Join(Scan("fact"), Scan("dim"), join_cond),
             RangePredicate("fact.k", 0, 10)));
  ASSERT_TRUE(pushed.ok());
  ASSERT_TRUE(unpushed.ok());
  EXPECT_LT(pushed->seconds, unpushed->seconds);
  // Both return the same logical row estimate.
  EXPECT_NEAR(pushed->out_rows, unpushed->out_rows, unpushed->out_rows * 0.01);
}

TEST_F(CostModelTest, AggregateUsesNdv) {
  PlanCostEstimator est(&cluster_, &catalog_);
  auto agg = est.Estimate(Aggregate(Scan("dim"), {"dim.g"},
                                    {{AggFunc::kCount, "", "n"}}));
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(agg->out_rows, 40.0, 1e-6);
}

TEST_F(CostModelTest, ViewRefFragmentBytesFromHistogram) {
  // Register a view table with a histogram.
  auto view = std::make_shared<Table>(
      "v1", Schema({{"fact.k", DataType::kInt64}}));
  view->set_logical_row_count(1000000);
  view->set_avg_row_bytes(100);
  AttributeHistogram hist(Interval(0, 1000), 100);
  hist.AddRange(Interval(0, 1000), 1000000);
  view->SetHistogram("fact.k", hist);
  catalog_.Put(view);
  PlanCostEstimator est(&cluster_, &catalog_);
  auto frag = est.Estimate(ViewRef("v1", "fact.k", {Interval(0, 100)}));
  auto whole = est.Estimate(ViewRef("v1", "", {}));
  ASSERT_TRUE(frag.ok());
  ASSERT_TRUE(whole.ok());
  EXPECT_NEAR(frag->bytes_read, 0.1 * whole->bytes_read, 1e-3 * whole->bytes_read);
  EXPECT_LT(frag->seconds, whole->seconds + 1e-9);
}

TEST(RuntimeEstimatorTest, ProjectsLinearTrend) {
  RuntimeEstimator est(3);
  est.Record("Q30", 100, 10);
  est.Record("Q30", 200, 20);
  est.Record("Q30", 300, 30);
  EXPECT_NEAR(est.Project("Q30", 400), 40.0, 1e-6);
  EXPECT_EQ(est.NumObservations("Q30"), 3u);
}

TEST(RuntimeEstimatorTest, FallsBackToMeanWithFewSamples) {
  RuntimeEstimator est(3);
  est.Record("Q1", 100, 10);
  est.Record("Q1", 300, 20);
  EXPECT_NEAR(est.Project("Q1", 1000), 15.0, 1e-9);
  EXPECT_EQ(est.Project("unknown", 5, 99.0), 99.0);
}

TEST(RuntimeEstimatorTest, ProjectCumulativeExtrapolates) {
  // 10 queries: first expensive (materialization), rest cheap.
  std::vector<double> times = {100, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  const double projected = RuntimeEstimator::ProjectCumulative(times, 100);
  // Roughly 100 + 99*10 with the regression smoothing the first spike.
  EXPECT_GT(projected, 800.0);
  EXPECT_LT(projected, 1400.0);
}

TEST(RuntimeEstimatorTest, ProjectCumulativeShortInputs) {
  EXPECT_EQ(RuntimeEstimator::ProjectCumulative({}, 10), 0.0);
  EXPECT_EQ(RuntimeEstimator::ProjectCumulative({5}, 10), 50.0);
  // Enough data: exact prefix sum when target <= n.
  EXPECT_EQ(RuntimeEstimator::ProjectCumulative({1, 2, 3}, 2), 3.0);
}

}  // namespace
}  // namespace deepsea
