#include <map>
#include <cmath>
#include <gtest/gtest.h>

#include "plan/signature.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"
#include "workload/sdss.h"

namespace deepsea {
namespace {

TEST(RangeGeneratorTest, SelectivityFractions) {
  EXPECT_DOUBLE_EQ(SelectivityFraction(Selectivity::kSmall), 0.01);
  EXPECT_DOUBLE_EQ(SelectivityFraction(Selectivity::kMedium), 0.05);
  EXPECT_DOUBLE_EQ(SelectivityFraction(Selectivity::kBig), 0.25);
}

TEST(RangeGeneratorTest, WidthMatchesSelectivity) {
  RangeGenerator gen(Interval(0, 1000), Selectivity::kMedium, Skew::kUniform, 1);
  for (int i = 0; i < 100; ++i) {
    const Interval iv = gen.Next();
    EXPECT_NEAR(iv.Width(), 50.0, 1e-9);
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1000.0);
  }
}

TEST(RangeGeneratorTest, UniformMidpointsSpread) {
  RangeGenerator gen(Interval(0, 1000), Selectivity::kSmall, Skew::kUniform, 2);
  int low = 0, high = 0;
  for (int i = 0; i < 1000; ++i) {
    const double mid = gen.Next().Mid();
    if (mid < 500) ++low;
    if (mid >= 500) ++high;
  }
  EXPECT_GT(low, 400);
  EXPECT_GT(high, 400);
}

TEST(RangeGeneratorTest, HeavySkewConcentrates) {
  RangeGenerator gen(Interval(0, 1000), Selectivity::kSmall, Skew::kHeavy, 3);
  int near_center = 0;
  for (int i = 0; i < 1000; ++i) {
    const double mid = gen.Next().Mid();
    if (std::abs(mid - 500) < 25) ++near_center;
  }
  EXPECT_GT(near_center, 950);  // sigma is 2.5 of 1000
}

TEST(RangeGeneratorTest, LightSkewWiderThanHeavy) {
  RangeGenerator light(Interval(0, 1000), Selectivity::kSmall, Skew::kLight, 4);
  RangeGenerator heavy(Interval(0, 1000), Selectivity::kSmall, Skew::kHeavy, 4);
  double light_spread = 0, heavy_spread = 0;
  for (int i = 0; i < 500; ++i) {
    light_spread += std::abs(light.Next().Mid() - 500);
    heavy_spread += std::abs(heavy.Next().Mid() - 500);
  }
  EXPECT_GT(light_spread, 5 * heavy_spread);
}

TEST(RangeGeneratorTest, CustomCenterRespected) {
  RangeGenerator::Config cfg;
  cfg.domain = Interval(0, 400000);
  cfg.selectivity_fraction = 0.01;
  cfg.skew = Skew::kHeavy;
  cfg.center = 20000;
  RangeGenerator gen(cfg, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(gen.Next().Mid(), 20000, 5000);
  }
}

TEST(RangeGeneratorTest, Deterministic) {
  RangeGenerator a(Interval(0, 100), Selectivity::kSmall, Skew::kLight, 42);
  RangeGenerator b(Interval(0, 100), Selectivity::kSmall, Skew::kLight, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfRangeGeneratorTest, HotBucketDominates) {
  ZipfRangeGenerator gen(Interval(0, 1000), 0.01, 50, 1.5, 6);
  std::map<int, int> bucket_counts;
  for (int i = 0; i < 2000; ++i) {
    bucket_counts[static_cast<int>(gen.Next().Mid() / 20.0)]++;
  }
  int max_count = 0;
  for (const auto& [b, c] : bucket_counts) max_count = std::max(max_count, c);
  // The hottest bucket receives far more than the uniform share (40).
  EXPECT_GT(max_count, 400);
}

TEST(SdssTraceModelTest, TraceDeterministicAndInDomain) {
  SdssTraceModel m1(SdssTraceModel::Config{}, 99);
  SdssTraceModel m2(SdssTraceModel::Config{}, 99);
  const auto t1 = m1.GenerateTrace(500);
  const auto t2 = m2.GenerateTrace(500);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t2[i]);
    EXPECT_GE(t1[i].lo, -20.0);
    EXPECT_LE(t1[i].hi, 400.0);
  }
}

TEST(SdssTraceModelTest, HotSpotNear250) {
  SdssTraceModel model;
  const auto trace = model.GenerateTrace(5000);
  const auto hist = SdssTraceModel::HitHistogram(trace, Interval(-20, 400), 30);
  // The 240-270 band must be hotter than the cold 340-370 band.
  EXPECT_GT(hist.MassInRange(Interval(240, 270)),
            5 * hist.MassInRange(Interval(340, 370)) + 1);
}

TEST(SdssTraceModelTest, RegimeShiftsTowards100) {
  SdssTraceModel model;
  const auto trace = model.GenerateTrace(10000);
  double early_mass_100 = 0, late_mass_100 = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const bool near100 = trace[i].Mid() > 80 && trace[i].Mid() < 130;
    if (i < 3000 && near100) early_mass_100 += 1;
    if (i >= 3000 && near100) late_mass_100 += 1;
  }
  // Late phase has 7000 queries vs 3000 early; normalize.
  EXPECT_GT(late_mass_100 / 7000.0, 2.0 * early_mass_100 / 3000.0);
}

TEST(SdssTraceModelTest, AccessDensityPeaks) {
  SdssTraceModel model;
  const auto density = model.AccessDensity(105);
  EXPECT_GT(density.MassInRange(Interval(230, 270)),
            density.MassInRange(Interval(0, 40)));
  EXPECT_GT(density.MassInRange(Interval(90, 120)),
            density.MassInRange(Interval(300, 330)));
}

TEST(SdssTraceModelTest, MapRangeLinear) {
  const Interval mapped = SdssTraceModel::MapRange(
      Interval(190, 200), Interval(-20, 400), Interval(0, 420000));
  EXPECT_NEAR(mapped.lo, 210000.0, 1e-6);
  EXPECT_NEAR(mapped.hi, 220000.0, 1e-6);
}

class BigBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options opts;
    opts.total_bytes = 100e9;
    opts.sample_rows_per_fact = 1000;
    opts.sample_rows_per_dim = 100;
    ASSERT_TRUE(BigBenchDataset::Generate(opts, &catalog_).ok());
  }
  Catalog catalog_;
};

TEST_F(BigBenchTest, AllTablesRegistered) {
  for (const char* t :
       {"item", "customer", "store_sales", "web_clickstreams", "web_sales"}) {
    EXPECT_TRUE(catalog_.Contains(t)) << t;
  }
}

TEST_F(BigBenchTest, LogicalBytesApproximatelyTotal) {
  EXPECT_NEAR(catalog_.TotalLogicalBytes(), 100e9, 1e9);
}

TEST_F(BigBenchTest, FactsHaveItemSkHistograms) {
  for (const std::string& t : BigBenchDataset::FactTables()) {
    auto table = catalog_.Get(t);
    ASSERT_TRUE(table.ok());
    const AttributeHistogram* h = (*table)->GetHistogram(t + ".item_sk");
    ASSERT_NE(h, nullptr) << t;
    EXPECT_NEAR(h->total_count(),
                static_cast<double>((*table)->logical_row_count()),
                (*table)->logical_row_count() * 0.01);
  }
}

TEST_F(BigBenchTest, AllTemplatesBuildAndHaveSignatures) {
  for (const std::string& name : BigBenchTemplates::Names()) {
    auto plan = BigBenchTemplates::Build(name, 1000, 2000);
    ASSERT_TRUE(plan.ok()) << name;
    auto schema = (*plan)->OutputSchema(catalog_);
    EXPECT_TRUE(schema.ok()) << name << ": " << schema.status().ToString();
    auto sig = ComputeSignature(*plan, catalog_);
    EXPECT_TRUE(sig.ok()) << name << ": " << sig.status().ToString();
    if (sig.ok()) {
      EXPECT_TRUE(sig->has_aggregate) << name;
      auto fact = BigBenchTemplates::FactTableOf(name);
      ASSERT_TRUE(fact.ok());
      EXPECT_TRUE(sig->ranges.count(*fact + ".item_sk")) << name;
    }
  }
}

TEST_F(BigBenchTest, SharedJoinViewsAcrossTemplates) {
  // Q1, Q20, Q30 all join store_sales with item: the join subplans must
  // have identical signatures (that is what enables cross-template
  // view reuse).
  auto q1 = BigBenchTemplates::Build("Q1", 0, 100);
  auto q30 = BigBenchTemplates::Build("Q30", 500, 900);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q30.ok());
  // The shared view is the Project (over the join) under the Select
  // which is child(0) of the Aggregate.
  const PlanPtr join1 = (*q1)->child(0)->child(0);
  const PlanPtr join30 = (*q30)->child(0)->child(0);
  ASSERT_EQ(join1->kind(), PlanKind::kProject);
  auto s1 = ComputeSignature(join1, catalog_);
  auto s30 = ComputeSignature(join30, catalog_);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s30.ok());
  EXPECT_EQ(s1->ToString(), s30->ToString());
}

TEST_F(BigBenchTest, SkewedDistributionShapesSamples) {
  // Regenerate with an extreme item_sk distribution and verify samples
  // follow it.
  Catalog skewed;
  BigBenchDataset::Options opts;
  opts.total_bytes = 1e9;
  opts.sample_rows_per_fact = 2000;
  AttributeHistogram dist(Interval(0, 100), 10);
  dist.AddRange(Interval(0, 10), 95);
  dist.AddRange(Interval(10, 100), 5);
  opts.item_sk_distribution = dist;
  ASSERT_TRUE(BigBenchDataset::Generate(opts, &skewed).ok());
  auto ss = skewed.Get("store_sales");
  ASSERT_TRUE(ss.ok());
  int hot = 0;
  const auto idx = (*ss)->schema().FindColumn("store_sales.item_sk");
  ASSERT_TRUE(idx.has_value());
  for (const Row& row : (*ss)->rows()) {
    if (row[*idx].AsNumeric() < 0.1 * opts.item_sk_max) ++hot;
  }
  EXPECT_GT(hot, 0.85 * (*ss)->rows().size());
}

TEST_F(BigBenchTest, UnknownTemplateFails) {
  EXPECT_FALSE(BigBenchTemplates::Build("Q99", 0, 1).ok());
  EXPECT_FALSE(BigBenchTemplates::FactTableOf("Q99").ok());
}

}  // namespace
}  // namespace deepsea
