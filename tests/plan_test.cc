#include "plan/plan.h"

#include <gtest/gtest.h>

#include "plan/pushdown.h"

namespace deepsea {
namespace {

Catalog MakeCatalog() {
  Catalog c;
  auto t = std::make_shared<Table>(
      "t", Schema({{"t.a", DataType::kInt64}, {"t.b", DataType::kDouble}}));
  auto u = std::make_shared<Table>(
      "u", Schema({{"u.a", DataType::kInt64}, {"u.c", DataType::kString}}));
  c.Put(t);
  c.Put(u);
  return c;
}

TEST(PlanTest, ScanSchema) {
  Catalog c = MakeCatalog();
  auto s = Scan("t")->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
}

TEST(PlanTest, SelectPreservesSchema) {
  Catalog c = MakeCatalog();
  auto plan = Select(Scan("t"), RangePredicate("t.a", 0, 10));
  auto s = plan->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
}

TEST(PlanTest, ProjectSchemaTypesAndNames) {
  Catalog c = MakeCatalog();
  auto plan = Project(Scan("t"), {Col("t.a"), Arith(ArithOp::kMul, Col("t.b"), LitD(2))},
                      {"t.a", "b2"});
  auto s = plan->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(s->column(0).name, "t.a");
  EXPECT_EQ(s->column(0).type, DataType::kInt64);
  EXPECT_EQ(s->column(1).name, "b2");
  EXPECT_EQ(s->column(1).type, DataType::kDouble);
}

TEST(PlanTest, JoinConcatenatesSchemas) {
  Catalog c = MakeCatalog();
  auto plan = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto s = plan->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 4u);
}

TEST(PlanTest, AggregateSchema) {
  Catalog c = MakeCatalog();
  auto plan = Aggregate(Scan("t"), {"t.a"},
                        {{AggFunc::kCount, "", "cnt"},
                         {AggFunc::kSum, "t.b", "total"},
                         {AggFunc::kAvg, "t.b", "avg"}});
  auto s = plan->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->num_columns(), 4u);
  EXPECT_EQ(s->column(1).type, DataType::kInt64);   // COUNT
  EXPECT_EQ(s->column(2).type, DataType::kDouble);  // SUM(double)
  EXPECT_EQ(s->column(3).type, DataType::kDouble);  // AVG
}

TEST(PlanTest, AggregateUnknownColumnFails) {
  Catalog c = MakeCatalog();
  auto plan = Aggregate(Scan("t"), {"t.zzz"}, {{AggFunc::kCount, "", "n"}});
  EXPECT_FALSE(plan->OutputSchema(c).ok());
}

TEST(PlanTest, BaseTablesSorted) {
  auto plan = Join(Scan("u"), Scan("t"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  EXPECT_EQ(plan->BaseTables(), (std::vector<std::string>{"t", "u"}));
}

TEST(PlanTest, CollectSubplansPreOrder) {
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Aggregate(Select(join, RangePredicate("t.a", 0, 5)), {},
                        {{AggFunc::kCount, "", "n"}});
  std::vector<PlanPtr> subs;
  CollectSubplans(root, &subs);
  ASSERT_EQ(subs.size(), 5u);
  EXPECT_EQ(subs[0]->kind(), PlanKind::kAggregate);
  EXPECT_EQ(subs[1]->kind(), PlanKind::kSelect);
  EXPECT_EQ(subs[2]->kind(), PlanKind::kJoin);
}

TEST(PlanTest, ReplacePlanNodeSwapsSubtree) {
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Select(join, RangePredicate("t.a", 0, 5));
  auto replacement = ViewRef("v1", "t.a", {Interval(0, 5)});
  auto rewritten = ReplacePlanNode(root, join.get(), replacement);
  ASSERT_NE(rewritten.get(), root.get());
  EXPECT_EQ(rewritten->kind(), PlanKind::kSelect);
  EXPECT_EQ(rewritten->child(0)->kind(), PlanKind::kViewRef);
  // Original untouched.
  EXPECT_EQ(root->child(0)->kind(), PlanKind::kJoin);
}

TEST(PlanTest, ReplacePlanNodeMissingTargetReturnsSame) {
  auto root = Scan("t");
  auto other = Scan("u");
  EXPECT_EQ(ReplacePlanNode(root, other.get(), Scan("x")).get(), root.get());
}

TEST(PlanTest, ToStringRendersTree) {
  auto plan = Select(Scan("t"), RangePredicate("t.a", 0, 5));
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Select"), std::string::npos);
  EXPECT_NE(s.find("Scan(t)"), std::string::npos);
}

TEST(PushdownTest, SingleTableConjunctMovesToScan) {
  Catalog c = MakeCatalog();
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Select(join, RangePredicate("t.a", 0, 5));
  auto pushed = PushDownSelections(root, c);
  // The top Select disappears; a Select lands above Scan(t).
  ASSERT_EQ(pushed->kind(), PlanKind::kJoin);
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kSelect);
  EXPECT_EQ(pushed->child(0)->child(0)->kind(), PlanKind::kScan);
  EXPECT_EQ(pushed->child(0)->child(0)->table_name(), "t");
  EXPECT_EQ(pushed->child(1)->kind(), PlanKind::kScan);
}

TEST(PushdownTest, MultiTableConjunctStays) {
  Catalog c = MakeCatalog();
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto cross = Cmp(CompareOp::kLt, Col("t.b"), Col("u.a"));
  auto root = Select(join, cross);
  auto pushed = PushDownSelections(root, c);
  EXPECT_EQ(pushed->kind(), PlanKind::kSelect);
  EXPECT_EQ(pushed->predicate()->ToString(), cross->ToString());
}

TEST(PushdownTest, MixedPredicateSplits) {
  Catalog c = MakeCatalog();
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Select(join, And(RangePredicate("t.a", 0, 5),
                               Cmp(CompareOp::kLt, Col("t.b"), Col("u.a"))));
  auto pushed = PushDownSelections(root, c);
  // Cross-table conjunct remains on top; t.a range went down.
  ASSERT_EQ(pushed->kind(), PlanKind::kSelect);
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kJoin);
  EXPECT_EQ(pushed->child(0)->child(0)->kind(), PlanKind::kSelect);
}

TEST(PushdownTest, DoesNotCrossAggregates) {
  Catalog c = MakeCatalog();
  auto agg = Aggregate(Scan("t"), {"t.a"}, {{AggFunc::kCount, "", "cnt"}});
  auto root = Select(agg, Cmp(CompareOp::kGe, Col("cnt"), LitI(10)));
  auto pushed = PushDownSelections(root, c);
  EXPECT_EQ(pushed->kind(), PlanKind::kSelect);
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kAggregate);
}

TEST(PushdownTest, NestedSelectAboveJoinWithAggBelow) {
  Catalog c = MakeCatalog();
  // Selection above a join over plain scans, inside an aggregate.
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Aggregate(Select(join, RangePredicate("u.a", 1, 2)), {"t.a"},
                        {{AggFunc::kCount, "", "n"}});
  auto pushed = PushDownSelections(root, c);
  ASSERT_EQ(pushed->kind(), PlanKind::kAggregate);
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kJoin);
  EXPECT_EQ(pushed->child(0)->child(1)->kind(), PlanKind::kSelect);
}

TEST(PlanTest, AggregateSpecToString) {
  AggregateSpec s{AggFunc::kSum, "t.b", "total"};
  EXPECT_EQ(s.ToString(), "SUM(t.b) AS total");
  AggregateSpec cnt{AggFunc::kCount, "", "n"};
  EXPECT_EQ(cnt.ToString(), "COUNT(*) AS n");
}


TEST(PlanTest, SortLimitSchemaPassThrough) {
  Catalog c = MakeCatalog();
  auto plan = Limit(Sort(Scan("t"), {{"t.a", false}}), 5);
  auto s = plan->OutputSchema(c);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(plan->limit(), 5);
  EXPECT_EQ(plan->child(0)->sort_keys()[0].column, "t.a");
}

TEST(PlanTest, ReplaceUnderSortAndLimit) {
  auto scan = Scan("t");
  auto root = Limit(Sort(scan, {{"t.a", true}}), 3);
  auto rewritten = ReplacePlanNode(root, scan.get(), ViewRef("v1", "", {}));
  ASSERT_EQ(rewritten->kind(), PlanKind::kLimit);
  EXPECT_EQ(rewritten->child(0)->child(0)->kind(), PlanKind::kViewRef);
}

TEST(PushdownTest, DoesNotCrossLimit) {
  Catalog c = MakeCatalog();
  auto root = Select(Limit(Scan("t"), 5), RangePredicate("t.a", 0, 3));
  auto pushed = PushDownSelections(root, c);
  // The predicate would change which 5 rows survive; it must stay put.
  EXPECT_EQ(pushed->kind(), PlanKind::kSelect);
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kLimit);
}

TEST(PushdownTest, RecursesBelowSort) {
  Catalog c = MakeCatalog();
  auto join = Join(Scan("t"), Scan("u"),
                   Cmp(CompareOp::kEq, Col("t.a"), Col("u.a")));
  auto root = Sort(Select(join, RangePredicate("t.a", 0, 5)), {{"t.a", true}});
  auto pushed = PushDownSelections(root, c);
  ASSERT_EQ(pushed->kind(), PlanKind::kSort);
  // The selection below the sort was pushed to the scan of t.
  EXPECT_EQ(pushed->child(0)->kind(), PlanKind::kJoin);
  EXPECT_EQ(pushed->child(0)->child(0)->kind(), PlanKind::kSelect);
}

TEST(PlanTest, SortKeyToString) {
  EXPECT_EQ((SortKey{"t.a", true}).ToString(), "t.a ASC");
  EXPECT_EQ((SortKey{"t.a", false}).ToString(), "t.a DESC");
}

}  // namespace
}  // namespace deepsea
