// Two-tenant golden-trace regression test: two SDSS-patterned workloads
// (distinct seeds) run through engines sharing one PoolManager in a
// fixed round-robin commit order, and the interleaved QueryReport
// sequence is compared field by field against a checked-in golden file.
// The trace is computed twice — single-threaded replay and a
// turnstile-pinned two-thread run — and both must match the file
// bit-for-bit: with the commit order pinned, thread count must not be
// observable anywhere in the reports or the final pool state.
//
// Regenerate (only when a behaviour change is *intended*):
//   DEEPSEA_REGEN_GOLDEN=1 ./golden_multitenant_test

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "multitenant_harness.h"

#include "workload/bigbench.h"

namespace deepsea {
namespace {

#ifndef DEEPSEA_GOLDEN_DIR
#define DEEPSEA_GOLDEN_DIR "tests/golden"
#endif

constexpr int kQueriesPerTenant = 50;

EngineOptions Options() {
  EngineOptions o;
  o.strategy = StrategyKind::kDeepSea;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  SdssTraceModel sdss(SdssTraceModel::Config{}, 2017);
  o.item_sk_distribution = sdss.AccessDensity(420);
  return o;
}

// Strict alternation alice, bob, alice, bob, ...
std::vector<int> RoundRobinSchedule() {
  std::vector<int> schedule;
  schedule.reserve(2 * kQueriesPerTenant);
  for (int i = 0; i < kQueriesPerTenant; ++i) {
    schedule.push_back(0);
    schedule.push_back(1);
  }
  return schedule;
}

// Flattens the per-tenant report lines back into global commit order.
std::vector<std::string> InCommitOrder(const mt::ScheduledRunResult& run,
                                       const std::vector<int>& schedule) {
  std::vector<size_t> next(run.reports.size(), 0);
  std::vector<std::string> lines;
  lines.reserve(schedule.size());
  for (int who : schedule) {
    const size_t t = static_cast<size_t>(who);
    if (next[t] < run.reports[t].size()) {
      lines.push_back(run.reports[t][next[t]++]);
    }
  }
  return lines;
}

TEST(GoldenMultiTenantTest, InterleavedTraceMatchesGoldenAcrossThreadCounts) {
  const std::string path =
      std::string(DEEPSEA_GOLDEN_DIR) + "/engine_trace_multitenant.golden";
  const std::vector<std::string> tenants = {"alice", "bob"};
  const std::vector<std::vector<PlanPtr>> plans = {
      mt::BuildPlans(mt::SdssTenantWorkload(kQueriesPerTenant, 2017)),
      mt::BuildPlans(mt::SdssTenantWorkload(kQueriesPerTenant, 4034))};
  const std::vector<int> schedule = RoundRobinSchedule();

  Catalog seq_catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &seq_catalog).ok());
  const mt::ScheduledRunResult seq = mt::RunScheduled(
      &seq_catalog, Options(), tenants, plans, schedule, /*threaded=*/false);
  const std::vector<std::string> actual = InCommitOrder(seq, schedule);
  ASSERT_EQ(actual.size(), schedule.size());

  if (std::getenv("DEEPSEA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : actual) out << line << "\n";
    GTEST_SKIP() << "regenerated " << path << " (" << actual.size()
                 << " lines)";
  }

  // Same schedule on two real threads: bit-identical reports AND pool.
  Catalog thr_catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &thr_catalog).ok());
  const mt::ScheduledRunResult thr = mt::RunScheduled(
      &thr_catalog, Options(), tenants, plans, schedule, /*threaded=*/true);
  const std::vector<std::string> threaded = InCommitOrder(thr, schedule);
  ASSERT_EQ(actual.size(), threaded.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], threaded[i]) << "thread count visible at line " << i;
  }
  EXPECT_EQ(seq.fingerprint, thr.fingerprint);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; run with DEEPSEA_REGEN_GOLDEN=1 to create it";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) golden.push_back(line);
  }
  ASSERT_EQ(actual.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(actual[i], golden[i]) << "trace diverges at line " << i;
  }
}

}  // namespace
}  // namespace deepsea
