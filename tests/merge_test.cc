#include "core/merge.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

TEST(AreAdjacentTest, SharedBoundaryOwnership) {
  // [0,5) + [5,10] -> adjacent (point 5 owned once).
  EXPECT_TRUE(AreAdjacent(Interval::ClosedOpen(0, 5), Interval(5, 10)));
  // Order independence.
  EXPECT_TRUE(AreAdjacent(Interval(5, 10), Interval::ClosedOpen(0, 5)));
  // [0,5] + (5,10] -> adjacent.
  EXPECT_TRUE(AreAdjacent(Interval(0, 5), Interval::OpenClosed(5, 10)));
  // [0,5] + [5,10] -> overlap at 5, not adjacency.
  EXPECT_FALSE(AreAdjacent(Interval(0, 5), Interval(5, 10)));
  // [0,5) + (5,10] -> gap at 5.
  EXPECT_FALSE(AreAdjacent(Interval::ClosedOpen(0, 5), Interval::OpenClosed(5, 10)));
  // Disjoint.
  EXPECT_FALSE(AreAdjacent(Interval(0, 4), Interval(5, 10)));
}

FragmentStats Frag(const Interval& iv, std::vector<double> hit_times,
                   double bytes = 1e9, bool materialized = true) {
  FragmentStats f;
  f.interval = iv;
  f.size_bytes = bytes;
  f.materialized = materialized;
  for (double t : hit_times) f.RecordHit(t);
  return f;
}

TEST(CoAccessTest, IdenticalHitsFullCorrelation) {
  DecayFunction dec;
  const auto a = Frag(Interval::ClosedOpen(0, 5), {1, 2, 3});
  const auto b = Frag(Interval(5, 10), {1, 2, 3});
  EXPECT_DOUBLE_EQ(CoAccess(a, b, 10, dec), 1.0);
}

TEST(CoAccessTest, DisjointHitsZero) {
  DecayFunction dec;
  const auto a = Frag(Interval::ClosedOpen(0, 5), {1, 2, 3});
  const auto b = Frag(Interval(5, 10), {4, 5, 6});
  EXPECT_DOUBLE_EQ(CoAccess(a, b, 10, dec), 0.0);
}

TEST(CoAccessTest, PartialOverlapNormalizedByBusier) {
  DecayFunction dec;
  const auto a = Frag(Interval::ClosedOpen(0, 5), {1, 2, 3, 4});
  const auto b = Frag(Interval(5, 10), {3, 4});
  EXPECT_DOUBLE_EQ(CoAccess(a, b, 10, dec), 0.5);  // 2 shared / max(4,2)
}

TEST(CoAccessTest, DecayedOutHitsIgnored) {
  DecayFunction dec(DecayConfig{/*t_max=*/5.0, true});
  const auto a = Frag(Interval::ClosedOpen(0, 5), {1, 100});
  const auto b = Frag(Interval(5, 10), {1, 100});
  // At t_now=102, the hit at t=1 is timed out; only t=100 counts.
  EXPECT_DOUBLE_EQ(CoAccess(a, b, 102, dec), 1.0);
  // At t_now=200 everything is timed out.
  EXPECT_DOUBLE_EQ(CoAccess(a, b, 200, dec), 0.0);
}

class MergeCandidatesTest : public ::testing::Test {
 protected:
  ViewInfo* MakeView(std::vector<FragmentStats> frags) {
    PlanPtr plan = Scan("t");
    PlanSignature sig;
    sig.relations = {"t" + std::to_string(counter_++)};
    ViewInfo* view = views_.Track(plan, sig);
    view->stats.size_bytes = 100e9;
    PartitionState* part = view->EnsurePartition("t.a", Interval(0, 100));
    part->fragments = std::move(frags);
    return view;
  }

  ViewCatalog views_;
  DecayFunction dec_;
  int counter_ = 0;
};

TEST_F(MergeCandidatesTest, DisabledReturnsNothing) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3}),
            Frag(Interval(5, 10), {1, 2, 3})});
  MergeConfig cfg;
  cfg.enabled = false;
  EXPECT_TRUE(FindMergeCandidates(&views_, cfg, 10, dec_).empty());
}

TEST_F(MergeCandidatesTest, FindsCoAccessedAdjacentPair) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3}),
            Frag(Interval(5, 10), {1, 2, 3})});
  MergeConfig cfg;
  cfg.enabled = true;
  const auto cands = FindMergeCandidates(&views_, cfg, 10, dec_);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].merged, Interval(0, 10));
  EXPECT_DOUBLE_EQ(cands[0].co_access, 1.0);
}

TEST_F(MergeCandidatesTest, LowCorrelationRejected) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3, 4}),
            Frag(Interval(5, 10), {4, 5, 6})});
  MergeConfig cfg;
  cfg.enabled = true;
  cfg.min_co_access = 0.8;
  EXPECT_TRUE(FindMergeCandidates(&views_, cfg, 10, dec_).empty());
}

TEST_F(MergeCandidatesTest, TooFewHitsRejected) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1}),
            Frag(Interval(5, 10), {1})});
  MergeConfig cfg;
  cfg.enabled = true;
  cfg.min_hits = 3;
  EXPECT_TRUE(FindMergeCandidates(&views_, cfg, 10, dec_).empty());
}

TEST_F(MergeCandidatesTest, OversizedMergeRejected) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3}, /*bytes=*/15e9),
            Frag(Interval(5, 10), {1, 2, 3}, /*bytes=*/15e9)});
  MergeConfig cfg;
  cfg.enabled = true;
  cfg.max_merged_fraction = 0.2;  // 20 GB > 0.2 * 100 GB
  EXPECT_TRUE(FindMergeCandidates(&views_, cfg, 10, dec_).empty());
}

TEST_F(MergeCandidatesTest, UnmaterializedFragmentsIgnored) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3}, 1e9, false),
            Frag(Interval(5, 10), {1, 2, 3})});
  MergeConfig cfg;
  cfg.enabled = true;
  EXPECT_TRUE(FindMergeCandidates(&views_, cfg, 10, dec_).empty());
}

TEST_F(MergeCandidatesTest, SortedByCoAccess) {
  MakeView({Frag(Interval::ClosedOpen(0, 5), {1, 2, 3}),
            Frag(Interval::ClosedOpen(5, 10), {1, 2, 3}),
            Frag(Interval(10, 15), {1, 2, 3, 4, 5, 6})});
  MergeConfig cfg;
  cfg.enabled = true;
  cfg.min_co_access = 0.3;
  const auto cands = FindMergeCandidates(&views_, cfg, 10, dec_);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_GE(cands[0].co_access, cands[1].co_access);
}

// End-to-end: the engine's merge pass consolidates co-accessed slivers.
TEST(EngineMergeTest, MergePassConsolidatesFragments) {
  Catalog catalog;
  BigBenchDataset::Options data;
  data.total_bytes = 100e9;
  data.sample_rows_per_fact = 200;
  data.sample_rows_per_dim = 50;
  ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog).ok());
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.02;
  opts.enforce_block_lower_bound = false;
  opts.merge.enabled = true;
  // The narrow query hits only the left fragment; the wide query hits
  // both -> co-access 0.5. The merged pair spans ~30% of the view.
  opts.merge.min_co_access = 0.45;
  opts.merge.max_merged_fraction = 0.5;
  opts.merge.min_hits = 2;
  DeepSeaEngine engine(&catalog, opts);
  // Queries repeatedly span the SAME two ranges so their fragments are
  // co-accessed; after a few queries they should merge.
  for (int i = 0; i < 12; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
    auto plan2 = BigBenchTemplates::Build("Q30", 100000, 220000);
    ASSERT_TRUE(plan2.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan2).ok());
  }
  EXPECT_GT(engine.totals().fragments_merged, 0);
  // Merged fragments keep the pool consistent with the FS.
  EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
              1.0 + engine.PoolBytes() * 1e-9);
}

}  // namespace
}  // namespace deepsea
