#include <cmath>
#include "expr/expr.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Schema schema_{{{"t.a", DataType::kInt64},
                  {"t.b", DataType::kDouble},
                  {"t.s", DataType::kString}}};
  Row row_{Value(int64_t{5}), Value(2.5), Value("hello")};

  Value Eval(const ExprPtr& e) {
    auto r = e->Eval(row_, schema_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : Value();
  }
};

TEST_F(ExprTest, ColumnRefResolves) {
  EXPECT_EQ(Eval(Col("t.a")), Value(int64_t{5}));
  EXPECT_EQ(Eval(Col("b")), Value(2.5));  // short name
}

TEST_F(ExprTest, UnknownColumnErrors) {
  auto r = Col("t.zzz")->Eval(row_, schema_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExprTest, Literals) {
  EXPECT_EQ(Eval(LitI(9)), Value(int64_t{9}));
  EXPECT_EQ(Eval(LitD(1.5)), Value(1.5));
  EXPECT_EQ(Eval(LitS("x")), Value("x"));
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Eval(Cmp(CompareOp::kEq, Col("t.a"), LitI(5))), Value(true));
  EXPECT_EQ(Eval(Cmp(CompareOp::kLt, Col("t.a"), LitI(5))), Value(false));
  EXPECT_EQ(Eval(Cmp(CompareOp::kLe, Col("t.a"), LitI(5))), Value(true));
  EXPECT_EQ(Eval(Cmp(CompareOp::kGt, Col("t.b"), LitD(2.0))), Value(true));
  EXPECT_EQ(Eval(Cmp(CompareOp::kNe, Col("t.s"), LitS("hello"))), Value(false));
}

TEST_F(ExprTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Eval(Cmp(CompareOp::kEq, Col("t.a"), LitD(5.0))), Value(true));
}

TEST_F(ExprTest, NullComparisonIsFalse) {
  EXPECT_EQ(Eval(Cmp(CompareOp::kEq, Lit(Value::Null()), LitI(1))), Value(false));
}

TEST_F(ExprTest, LogicalShortCircuit) {
  EXPECT_EQ(Eval(And(Lit(Value(false)), Lit(Value(true)))), Value(false));
  EXPECT_EQ(Eval(Or(Lit(Value(true)), Lit(Value(false)))), Value(true));
  EXPECT_EQ(Eval(Not(Lit(Value(false)))), Value(true));
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Arith(ArithOp::kAdd, Col("t.a"), LitI(3))), Value(int64_t{8}));
  EXPECT_EQ(Eval(Arith(ArithOp::kMul, Col("t.b"), LitD(2.0))), Value(5.0));
  // Division is always floating point.
  EXPECT_EQ(Eval(Arith(ArithOp::kDiv, LitI(7), LitI(2))), Value(3.5));
  // Division by zero yields NULL.
  EXPECT_TRUE(Eval(Arith(ArithOp::kDiv, LitI(1), LitI(0))).is_null());
}

TEST_F(ExprTest, ToStringCanonical) {
  const ExprPtr e = And(Cmp(CompareOp::kGe, Col("t.a"), LitI(1)),
                        Cmp(CompareOp::kLe, Col("t.a"), LitI(9)));
  EXPECT_EQ(e->ToString(), "((t.a >= 1) AND (t.a <= 9))");
}

TEST_F(ExprTest, CollectColumns) {
  std::vector<std::string> cols;
  And(Cmp(CompareOp::kEq, Col("t.a"), Col("u.b")), Col("t.s"))
      ->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
}

TEST(SplitConjunctsTest, FlattensNestedAnds) {
  const ExprPtr e =
      And(And(Cmp(CompareOp::kGe, Col("a"), LitI(1)), Col("x")),
          Cmp(CompareOp::kLe, Col("a"), LitI(9)));
  EXPECT_EQ(SplitConjuncts(e).size(), 3u);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(ExtractRangesTest, SimpleBetween) {
  const ExprPtr e = RangePredicate("t.a", 10, 20);
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_EQ(ex.ranges[0].column, "t.a");
  EXPECT_EQ(ex.ranges[0].lo, 10.0);
  EXPECT_EQ(ex.ranges[0].hi, 20.0);
  EXPECT_TRUE(ex.ranges[0].lo_inclusive);
  EXPECT_TRUE(ex.ranges[0].hi_inclusive);
  EXPECT_TRUE(ex.residuals.empty());
}

TEST(ExtractRangesTest, FlippedLiteralComparison) {
  // 5 <= a  is  a >= 5.
  const ExprPtr e = Cmp(CompareOp::kLe, LitD(5), Col("a"));
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_EQ(ex.ranges[0].lo, 5.0);
  EXPECT_TRUE(std::isinf(ex.ranges[0].hi));
}

TEST(ExtractRangesTest, IntersectsMultipleConstraints) {
  const ExprPtr e = And(Cmp(CompareOp::kGe, Col("a"), LitD(0)),
                        And(Cmp(CompareOp::kLe, Col("a"), LitD(100)),
                            Cmp(CompareOp::kLt, Col("a"), LitD(50))));
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_EQ(ex.ranges[0].hi, 50.0);
  EXPECT_FALSE(ex.ranges[0].hi_inclusive);
}

TEST(ExtractRangesTest, EqualityBecomesPointRange) {
  const ExprPtr e = Cmp(CompareOp::kEq, Col("a"), LitD(7));
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_EQ(ex.ranges[0].lo, 7.0);
  EXPECT_EQ(ex.ranges[0].hi, 7.0);
}

TEST(ExtractRangesTest, ColumnEqualityDetected) {
  const ExprPtr e = Cmp(CompareOp::kEq, Col("t.a"), Col("u.b"));
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.column_equalities.size(), 1u);
  EXPECT_EQ(ex.column_equalities[0].first, "t.a");
  EXPECT_EQ(ex.column_equalities[0].second, "u.b");
  EXPECT_TRUE(ex.ranges.empty());
}

TEST(ExtractRangesTest, ResidualsPreserved) {
  const ExprPtr res = Or(Col("x"), Col("y"));
  const ExprPtr e = And(RangePredicate("a", 0, 1), res);
  const RangeExtraction ex = ExtractRanges(e);
  ASSERT_EQ(ex.residuals.size(), 1u);
  EXPECT_EQ(ex.residuals[0]->ToString(), res->ToString());
}

TEST(ExtractRangesTest, NotEqualIsResidual) {
  const ExprPtr e = Cmp(CompareOp::kNe, Col("a"), LitD(3));
  const RangeExtraction ex = ExtractRanges(e);
  EXPECT_TRUE(ex.ranges.empty());
  EXPECT_EQ(ex.residuals.size(), 1u);
}

TEST(RangePredicateTest, BuildsClosedRange) {
  const ExprPtr e = RangePredicate("c", 2, 8);
  Schema s({{"c", DataType::kDouble}});
  auto in = e->Eval({Value(5.0)}, s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(*in, Value(true));
  auto out = e->Eval({Value(9.0)}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, Value(false));
}

TEST(AndAllTest, EmptyIsNull) {
  EXPECT_EQ(AndAll({}), nullptr);
  const ExprPtr single = Col("x");
  EXPECT_EQ(AndAll({single}), single);
}

}  // namespace
}  // namespace deepsea
