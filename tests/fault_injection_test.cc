// Fault-injection soak and recovery tests: with a ScheduledFaultPolicy
// installed under the engine, materialization decisions fail mid-flight
// and the system must (a) never crash or wedge a query, (b) keep the
// structural pool invariants at every commit boundary (the transaction
// rollback restores pool metadata, FS files, and statistics together),
// (c) retry transient faults and degrade gracefully on permanent ones,
// (d) quarantine repeatedly failing views and re-admit them after the
// cooldown, and (e) stay bit-identical to a fault-free run when the
// machinery is installed but never fires.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/engine.h"
#include "core/materialization_service.h"
#include "core/view_sizing.h"
#include "exp/trace.h"
#include "storage/fault_policy.h"
#include "multitenant_harness.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

/// Re-checks the transactional invariants inside the commit section at
/// the end of every Apply and Merge stage — i.e. immediately after a
/// commit or a rollback. A fault that left the pool half-applied
/// (metadata without its file, or vice versa) is caught here, at the
/// exact boundary, not smeared over later queries. Extends
/// TraceObserver so the soak also records the fault-event telemetry
/// (exported as a CSV artifact by the CI fault-soak step).
class FaultInvariantProbe : public TraceObserver {
 public:
  FaultInvariantProbe(const DeepSeaEngine* engine, double s_max)
      : TraceObserver("fault_soak", nullptr), engine_(engine), s_max_(s_max) {}

  void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                  double sim_seconds, double wall_seconds) override {
    TraceObserver::OnStageEnd(stage, ctx, sim_seconds, wall_seconds);
    if (stage != EngineStage::kApply && stage != EngineStage::kMerge) return;
    ++checks_;
    ASSERT_LE(engine_->PoolBytes(), s_max_ * 1.0001)
        << "at stage " << EngineStageName(stage);
    // Pool accounting must match the simulated FS exactly: a rollback
    // that restored metadata but not files (or the reverse) breaks this.
    ASSERT_NEAR(engine_->PoolBytes(), engine_->fs().TotalBytes("pool/"),
                1.0 + engine_->PoolBytes() * 1e-9)
        << "at stage " << EngineStageName(stage);
    // Every materialized piece must be backed by its FS file.
    for (const ViewInfo* v : engine_->views().AllViews()) {
      if (v->whole_materialized) {
        ASSERT_TRUE(engine_->fs().Exists(
            StrFormat("pool/%s/full", v->id.c_str())))
            << v->id;
      }
      for (const auto& [attr, part] : v->partitions) {
        for (const FragmentStats& f : part.fragments) {
          if (!f.materialized) continue;
          ASSERT_TRUE(engine_->fs().Exists(FragmentPath(*v, attr, f.interval)))
              << v->id << " " << attr << " " << f.interval.ToString();
        }
      }
    }
  }

  int64_t checks() const { return checks_; }

 private:
  const DeepSeaEngine* engine_;
  double s_max_;
  int64_t checks_ = 0;
};

EngineOptions SoakOptions() {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  opts.pool_limit_bytes = 6e9;  // tight: forces evictions
  opts.merge.enabled = true;    // exercise the merge-pass txn too
  return opts;
}

Catalog MakeCatalog() {
  BigBenchDataset::Options data;
  data.total_bytes = 80e9;
  data.sample_rows_per_fact = 300;
  data.sample_rows_per_dim = 60;
  data.seed = 3;
  Catalog catalog;
  EXPECT_TRUE(BigBenchDataset::Generate(data, &catalog).ok());
  return catalog;
}

/// The invariants-test workload shape: random template, random range.
std::vector<PlanPtr> RandomWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  const auto names = BigBenchTemplates::Names();
  std::vector<PlanPtr> out;
  out.reserve(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double width = rng.Uniform(2000, 60000);
    const double center = rng.Bernoulli(0.7) ? rng.Gaussian(150000, 10000)
                                             : rng.Uniform(0, 400000);
    const double lo = Clamp(center - width / 2, 0, 400000 - width);
    auto plan = BigBenchTemplates::Build(name, lo, lo + width);
    EXPECT_TRUE(plan.ok()) << name;
    out.push_back(*plan);
  }
  return out;
}

// ---------------------------------------------------------------------
// Seeded soak: 500 queries against storage injecting a mix of transient
// and permanent faults at >= 5% of guarded operations. Every query must
// be answered, and the invariants must hold at every stage boundary.
TEST(FaultSoakTest, SeededSoakSurvivesWithInvariantsIntact) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts = SoakOptions();
  opts.fault.retry_backoff_seconds = 1.0;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/2024);
  FaultRule transient;
  transient.probability = 0.04;
  transient.transient = true;
  policy.AddRule(transient);
  FaultRule permanent;
  permanent.probability = 0.03;
  permanent.permanent_code = StatusCode::kResourceExhausted;
  policy.AddRule(permanent);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  FaultInvariantProbe probe(&engine, opts.pool_limit_bytes);
  engine.set_observer(&probe);

  const auto plans = RandomWorkload(500, /*seed=*/11);
  for (size_t q = 0; q < plans.size(); ++q) {
    auto report = engine.ProcessQuery(plans[q]);
    ASSERT_TRUE(report.ok()) << "query " << q << ": "
                             << report.status().ToString();
    if (report->degraded) {
      EXPECT_GE(report->fault_count, 1) << "query " << q;
      EXPECT_FALSE(report->fault_message.empty()) << "query " << q;
    }
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "query " << q;
  }

  // The schedule must actually have stressed the system.
  EXPECT_GE(policy.ops_seen(), 100);
  EXPECT_GE(policy.FaultRate(), 0.05) << policy.faults_injected() << "/"
                                      << policy.ops_seen();
  EXPECT_GE(probe.checks(), 500);
  EXPECT_GT(engine.totals().faults, 0);
  EXPECT_GT(engine.totals().queries_degraded, 0);
  // Transient-only failures get retried; at least some retries must have
  // rescued a decision (faults > degraded queries alone would imply).
  EXPECT_GT(engine.totals().retries, 0);
  // Despite the fault rate the pool still adapted.
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_GT(engine.totals().queries_answered_from_views, 0);
  EXPECT_EQ(probe.faults(), engine.totals().faults);

  // CI's fault-soak step sets DEEPSEA_FAULT_CSV to archive the
  // injected-fault schedule as a build artifact.
  if (const char* csv_path = std::getenv("DEEPSEA_FAULT_CSV")) {
    std::FILE* f = std::fopen(csv_path, "w");
    ASSERT_NE(f, nullptr) << csv_path;
    const std::string csv = probe.FaultEventsCsv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
  }
}

// ---------------------------------------------------------------------
// With the fault machinery installed but silent (a policy with no
// rules), every report and the final pool state are bit-identical to a
// run with no policy at all: the seam is zero-cost when unused.
TEST(FaultSoakTest, SilentPolicyIsBitIdenticalToNoPolicy) {
  const auto plans = RandomWorkload(60, /*seed=*/5);

  auto run = [&](bool install_silent_policy) {
    Catalog catalog = MakeCatalog();
    EngineOptions opts = SoakOptions();
    DeepSeaEngine engine(&catalog, opts);
    ScheduledFaultPolicy silent(/*seed=*/1);  // no rules: never fires
    if (install_silent_policy) {
      engine.mutable_pool()->SetFaultPolicy(&silent);
    }
    std::vector<std::string> reports;
    for (const PlanPtr& plan : plans) {
      auto report = engine.ProcessQuery(plan);
      EXPECT_TRUE(report.ok());
      if (report.ok()) reports.push_back(mt::FormatTenantReport(*report));
    }
    engine.mutable_pool()->SetFaultPolicy(nullptr);
    reports.push_back(mt::PoolFingerprint(engine.pool()));
    return reports;
  };

  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------
// A transient fault is retried against the rolled-back pool and the
// retry succeeds; the query is charged the configured backoff and is
// NOT degraded.
TEST(FaultRecoveryTest, TransientFaultRetriesAndSucceeds) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.0;  // first query materializes
  opts.fault.max_retries = 2;
  opts.fault.retry_backoff_seconds = 7.5;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/9);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.path_substring = "pool/";
  rule.every_nth = 1;
  rule.max_failures = 1;  // exactly the first pool write fails
  rule.transient = true;
  policy.AddRule(rule);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  TraceObserver obs("fault", nullptr);
  engine.set_observer(&obs);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());
  auto report = engine.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->fault_count, 1);
  EXPECT_EQ(report->retry_count, 1);
  EXPECT_FALSE(report->degraded);
  EXPECT_FALSE(report->created_views.empty());
  EXPECT_GE(report->materialize_seconds, 7.5);  // includes the backoff
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_EQ(obs.faults(), 1);
  EXPECT_EQ(obs.retries(), 1);
  EXPECT_EQ(obs.degrades(), 0);

  // The fault-event CSV names the failing stage and the injected code.
  const std::string csv = obs.FaultEventsCsv();
  EXPECT_NE(csv.find("fault,apply"), std::string::npos) << csv;
  EXPECT_NE(csv.find("Unavailable"), std::string::npos) << csv;
  EXPECT_NE(csv.find("retry,apply"), std::string::npos) << csv;
}

// ---------------------------------------------------------------------
// A permanent fault mid-decision rolls the whole decision back (files
// written earlier in the same decision are restored) and degrades the
// query: it is still answered, but the pool keeps its prior contents.
TEST(FaultRecoveryTest, PermanentFaultRollsBackAndDegrades) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.0;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/9);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.path_substring = "pool/";
  rule.every_nth = 1;
  rule.after_count = 2;  // two pool writes land, then everything fails
  rule.permanent_code = StatusCode::kResourceExhausted;
  policy.AddRule(rule);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  TraceObserver obs("fault", nullptr);
  engine.set_observer(&obs);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());
  auto report = engine.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->fault_count, 1);   // permanent: no retries
  EXPECT_EQ(report->retry_count, 0);
  EXPECT_TRUE(report->created_views.empty());
  EXPECT_FALSE(report->fault_message.empty());
  EXPECT_GT(report->base_seconds, 0.0);  // the query was still answered

  // The decision's earlier writes were rolled back: nothing in the pool,
  // accounting consistent, restores recorded.
  EXPECT_EQ(engine.PoolBytes(), 0.0);
  EXPECT_TRUE(engine.fs().List("pool/").empty());
  EXPECT_GE(engine.fs().ledger().rollback_restores, 2);
  EXPECT_GE(engine.fs().ledger().failed_puts, 1);
  EXPECT_EQ(obs.degrades(), 1);
  EXPECT_EQ(engine.totals().queries_degraded, 1);
}

// ---------------------------------------------------------------------
// Quarantine: a view whose decisions keep failing permanently stops
// being proposed after quarantine_threshold faults, and is re-admitted
// once the cooldown expires — by which time the rule's fault budget is
// exhausted (storage "recovered") and materialization succeeds. The
// rule is scoped to one view's pool paths so the fault attribution
// cannot wander between views.
TEST(FaultRecoveryTest, QuarantineThenCooldownReadmission) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.0;
  opts.fault.max_retries = 0;
  opts.fault.quarantine_threshold = 2;
  opts.fault.quarantine_cooldown_commits = 3;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/9);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.path_substring = "pool/v2/";  // only v2's writes fail
  rule.every_nth = 1;
  rule.max_failures = 2;  // budget exhausts exactly at the threshold
  rule.permanent_code = StatusCode::kInternal;
  policy.AddRule(rule);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());

  // Phase 1: two queries, two permanent faults on v2 -> it hits the
  // threshold and is quarantined. Each failing decision rolls back as a
  // whole, so nothing else lands in the pool either.
  for (int q = 0; q < 2; ++q) {
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->degraded) << "query " << q;
    EXPECT_EQ(report->fault_view, "v2") << "query " << q;
  }
  const ViewInfo* quarantined = engine.views().Get("v2");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_TRUE(quarantined->Quarantined(engine.now()));
  EXPECT_EQ(engine.PoolBytes(), 0.0);

  // Phase 2: during the cooldown v2 is not proposed, so decisions no
  // longer touch its (faulty) paths and the others materialize — the
  // absence of v2 from created_views while the pool fills is what
  // proves the skip.
  const int64_t faults_at_quarantine = engine.totals().faults;
  while (quarantined->Quarantined(engine.now())) {
    auto cooldown_report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(cooldown_report.ok());
    EXPECT_EQ(cooldown_report->fault_count, 0);
    for (const std::string& id : cooldown_report->created_views) {
      EXPECT_NE(id, "v2") << "quarantined view was materialized";
    }
  }
  EXPECT_EQ(engine.totals().faults, faults_at_quarantine);
  EXPECT_GT(engine.PoolBytes(), 0.0);  // the healthy views did land
  EXPECT_FALSE(quarantined->InPool());

  // Empty the pool so the next query re-proposes every view: with the
  // pool serving the query, a subsumed candidate would never be
  // re-offered and re-admission would be unobservable.
  {
    CommitGuard commit = engine.mutable_pool()->BeginCommit();
    for (ViewInfo* v : engine.mutable_pool()->stat(commit)->AllViews()) {
      auto evicted = engine.mutable_pool()->EvictWholeView(v);
      ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
    }
  }
  ASSERT_EQ(engine.PoolBytes(), 0.0);

  // Phase 3: cooldown expired, v2 is proposable again and its storage
  // is healthy (rule budget exhausted) -> it finally materializes.
  auto report = engine.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(report->fault_count, 0);
  EXPECT_FALSE(quarantined->Quarantined(engine.now()));
  EXPECT_NE(std::find(report->created_views.begin(),
                      report->created_views.end(), "v2"),
            report->created_views.end())
      << "re-admitted view was not re-proposed";
  EXPECT_TRUE(quarantined->InPool());
}

// ---------------------------------------------------------------------
// Background-scoped faults: a permanent fault that only fires inside
// materialization-service jobs fails the fold and quarantines the view
// entirely in the background. The query that planned the decision was
// already answered undegraded, and no later foreground query ever
// surfaces the fault either — the blast radius is one background job.
TEST(FaultRecoveryTest, BackgroundFaultQuarantinesWithoutDegradingQueries) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.0;
  opts.fault.max_retries = 0;
  opts.fault.quarantine_threshold = 1;
  opts.materialization.mode = MaterializationConfig::Mode::kAsync;
  opts.materialization.workers = 0;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/9);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.path_substring = "pool/v2/";  // only v2's writes fail...
  rule.scope = FaultScope::kBackground;  // ...and only in background jobs
  rule.every_nth = 1;
  rule.permanent_code = StatusCode::kInternal;
  policy.AddRule(rule);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());
  auto report = engine.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(report->fault_count, 0);
  ASSERT_EQ(mat->QueueDepth(), 1u);

  // The fold fails permanently in the background: the decision rolls
  // back as a whole (nothing half-applied) and v2 is quarantined.
  mat->DrainAll();
  const auto s = mat->stats();
  EXPECT_EQ(s.failed, 1);
  EXPECT_GE(s.faults, 1);
  EXPECT_EQ(s.executed, 0);
  EXPECT_EQ(engine.PoolBytes(), 0.0);
  EXPECT_TRUE(engine.fs().List("pool/").empty());
  const ViewInfo* v2 = engine.views().Get("v2");
  ASSERT_NE(v2, nullptr);
  EXPECT_TRUE(v2->Quarantined(engine.now()));

  // Later queries skip the quarantined view; their decisions fold
  // healthy views in the background. Still zero degraded queries.
  for (int q = 0; q < 3; ++q) {
    auto r = engine.ProcessQuery(*plan);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->degraded) << "query " << q;
    EXPECT_EQ(r->fault_count, 0) << "query " << q;
  }
  mat->DrainAll();
  const auto after = mat->stats();
  EXPECT_GT(after.executed, 0);
  EXPECT_EQ(after.failed, 1);  // no further faults: v2 was never retried
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_EQ(engine.totals().queries_degraded, 0);
}

// ---------------------------------------------------------------------
// Scope isolation, the other direction: a foreground-scoped rule never
// fires on background storage traffic. In kAsync mode all pool writes
// happen inside service jobs, so the rule stays silent and every fold
// lands.
TEST(FaultRecoveryTest, ForegroundScopedRuleDoesNotFireInBackground) {
  Catalog catalog = MakeCatalog();
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.0;
  opts.materialization.mode = MaterializationConfig::Mode::kAsync;
  opts.materialization.workers = 0;
  DeepSeaEngine engine(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/9);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.path_substring = "pool/";
  rule.scope = FaultScope::kForeground;
  rule.every_nth = 1;
  rule.permanent_code = StatusCode::kInternal;
  policy.AddRule(rule);
  engine.mutable_pool()->SetFaultPolicy(&policy);

  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  mat->DrainAll();

  const auto s = mat->stats();
  EXPECT_GT(s.executed, 0);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.faults, 0);
  EXPECT_EQ(policy.faults_injected(), 0);
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_EQ(engine.totals().queries_degraded, 0);
}

// ---------------------------------------------------------------------
// Multi-tenant determinism under faults: the injected schedule is a
// function of the guarded-operation sequence, which is a function of
// the commit order — so a threaded run gated to a schedule and its
// single-threaded replay see identical faults and end in bit-identical
// pool states.
TEST(FaultMultiTenantTest, ThreadedAndReplayAgreeUnderFaults) {
  const int kTenants = 3;
  const int kQueries = 18;
  std::vector<std::string> tenants;
  std::vector<std::vector<PlanPtr>> plans;
  std::vector<int> queries_per_tenant;
  for (int t = 0; t < kTenants; ++t) {
    tenants.push_back("tenant" + std::to_string(t));
    plans.push_back(mt::BuildPlans(
        mt::SdssTenantWorkload(kQueries, /*seed=*/100 + t)));
    queries_per_tenant.push_back(kQueries);
  }
  const auto schedule = mt::ShuffledSchedule(queries_per_tenant, /*seed=*/77);

  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  opts.pool_limit_bytes = 6e9;

  auto run = [&](bool threaded) {
    Catalog catalog = MakeCatalog();
    ScheduledFaultPolicy policy(/*seed=*/31337);
    FaultRule transient;
    transient.probability = 0.05;
    transient.transient = true;
    policy.AddRule(transient);
    FaultRule permanent;
    permanent.probability = 0.02;
    policy.AddRule(permanent);
    auto result = mt::RunScheduled(
        &catalog, opts, tenants, plans, schedule, threaded,
        [&](PoolManager* pool) { pool->SetFaultPolicy(&policy); });
    EXPECT_GT(policy.faults_injected(), 0);
    return result;
  };

  const auto threaded = run(true);
  const auto replay = run(false);
  EXPECT_EQ(threaded.fingerprint, replay.fingerprint);
  ASSERT_EQ(threaded.reports.size(), replay.reports.size());
  for (size_t t = 0; t < threaded.reports.size(); ++t) {
    EXPECT_EQ(threaded.reports[t], replay.reports[t]) << "tenant " << t;
  }
}

}  // namespace
}  // namespace deepsea
