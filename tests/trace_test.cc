#include "exp/trace.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/str_util.h"

namespace deepsea {
namespace {

QueryReport Report(int64_t index, double total, double base = 100.0) {
  QueryReport r;
  r.query_index = index;
  r.base_seconds = base;
  r.best_seconds = total;
  r.total_seconds = total;
  r.pool_bytes_after = 2e9;
  return r;
}

TEST(QueryTraceTest, CumulativePerLabel) {
  QueryTrace trace;
  trace.Record("DS", Report(1, 10));
  trace.Record("H", Report(1, 100));
  trace.Record("DS", Report(2, 20));
  trace.Record("H", Report(2, 100));
  EXPECT_DOUBLE_EQ(trace.CumulativeSeconds("DS"), 30.0);
  EXPECT_DOUBLE_EQ(trace.CumulativeSeconds("H"), 200.0);
  EXPECT_DOUBLE_EQ(trace.CumulativeSeconds("unknown"), 0.0);
  EXPECT_EQ(trace.size(), 4u);
}

TEST(QueryTraceTest, CsvShape) {
  QueryTrace trace;
  QueryReport r = Report(7, 42.5);
  r.used_view = "v3";
  r.fragments_read = 2;
  r.created_views.push_back("v9");
  r.created_fragments = 3;
  trace.Record("DS", r);
  const std::string csv = trace.ToCsv();
  const auto lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(Split(lines[0], ',').size(), 13u);
  const auto fields = Split(lines[1], ',');
  ASSERT_EQ(fields.size(), 13u);
  EXPECT_EQ(fields[0], "DS");
  EXPECT_EQ(fields[1], "7");
  EXPECT_EQ(fields[7], "v3");
  EXPECT_EQ(fields[8], "2");
  EXPECT_EQ(fields[9], "1");
  EXPECT_EQ(fields[10], "3");
}

TEST(QueryTraceTest, WriteCsvRoundTrip) {
  QueryTrace trace;
  trace.Record("DS", Report(1, 5));
  const std::string path = "/tmp/deepsea_trace_test.csv";
  ASSERT_TRUE(trace.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[4096];
  const size_t n = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), trace.ToCsv());
}

TEST(QueryTraceTest, WriteToInvalidPathFails) {
  QueryTrace trace;
  EXPECT_FALSE(trace.WriteCsv("/nonexistent-dir/x.csv").ok());
}

}  // namespace
}  // namespace deepsea
