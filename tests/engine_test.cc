#include "core/engine.h"

#include <gtest/gtest.h>

#include "workload/bigbench.h"
#include "workload/range_generator.h"

namespace deepsea {
namespace {

// Shared fixture: a small BigBench-like catalog (100 GB logical) plus a
// fresh engine per test.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options opts;
    opts.total_bytes = 100.0 * 1e9;
    opts.sample_rows_per_fact = 500;
    opts.sample_rows_per_dim = 200;
    ASSERT_TRUE(BigBenchDataset::Generate(opts, &catalog_).ok());
  }

  PlanPtr Q30(double lo, double hi) {
    auto plan = BigBenchTemplates::Build("Q30", lo, hi);
    EXPECT_TRUE(plan.ok());
    return *plan;
  }

  Catalog catalog_;
};

TEST_F(EngineTest, HiveStrategyNeverMaterializes) {
  EngineOptions opts;
  opts.strategy = StrategyKind::kHive;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    auto report = engine.ProcessQuery(Q30(10000, 14000));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->created_views.empty());
    EXPECT_EQ(report->materialize_seconds, 0.0);
    EXPECT_GT(report->total_seconds, 0.0);
  }
  EXPECT_EQ(engine.PoolBytes(), 0.0);
  EXPECT_EQ(engine.totals().views_created, 0);
}

TEST_F(EngineTest, DeepSeaMaterializesAfterEvidence) {
  EngineOptions opts;
  opts.strategy = StrategyKind::kDeepSea;
  DeepSeaEngine engine(&catalog_, opts);
  // Repeated similar queries accumulate benefit until the join view is
  // materialized; afterwards queries are answered from fragments.
  bool materialized = false;
  bool reused = false;
  for (int i = 0; i < 10; ++i) {
    auto report = engine.ProcessQuery(Q30(10000, 14000));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (!report->created_views.empty()) materialized = true;
    if (!report->used_view.empty()) reused = true;
  }
  EXPECT_TRUE(materialized);
  EXPECT_TRUE(reused);
  EXPECT_GT(engine.PoolBytes(), 0.0);
}

TEST_F(EngineTest, ReuseIsCheaperThanBase) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  double last_base = 0.0, last_total = 0.0;
  // Selection constants jitter around a fixed hot spot (as in the
  // paper's heavy-skew workloads), so the aggregate views never act as
  // exact-match query caches and reuse must come from partitioned
  // join-view fragments.
  for (int i = 0; i < 12; ++i) {
    auto report = engine.ProcessQuery(Q30(10000 + (i % 3) * 10,
                                          14000 + (i % 3) * 10));
    ASSERT_TRUE(report.ok());
    last_base = report->base_seconds;
    last_total = report->total_seconds;
  }
  // Steady state: answering from small fragments beats scanning the
  // fact table and recomputing the join.
  EXPECT_LT(last_total, 0.5 * last_base);
}

TEST_F(EngineTest, SharedViewAcrossTemplates) {
  // Q1, Q20 and Q30 share the projected store_sales x item join; the
  // view materialized for one serves the others.
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 20000 + i * 20, 30000 + i * 20);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  auto q1 = BigBenchTemplates::Build("Q1", 21000, 29000);
  ASSERT_TRUE(q1.ok());
  auto report = engine.ProcessQuery(*q1);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->used_view.empty());
  EXPECT_LT(report->best_seconds, report->base_seconds);
}

TEST_F(EngineTest, PoolLimitEnforced) {
  EngineOptions opts;
  opts.pool_limit_bytes = 2.0 * 1e9;  // 2 GB: far below the join view size
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 12; ++i) {
    auto report = engine.ProcessQuery(Q30(10000.0 + i * 50, 14000.0 + i * 50));
    ASSERT_TRUE(report.ok());
    EXPECT_LE(engine.PoolBytes(), opts.pool_limit_bytes * 1.0001)
        << "pool exceeded S_max after query " << i;
  }
}

TEST_F(EngineTest, NoPartitionStrategyStoresWholeViews) {
  EngineOptions opts;
  opts.strategy = StrategyKind::kNoPartition;
  DeepSeaEngine engine(&catalog_, opts);
  bool created = false;
  for (int i = 0; i < 6; ++i) {
    auto report = engine.ProcessQuery(Q30(10000, 14000));
    ASSERT_TRUE(report.ok());
    if (!report->created_views.empty()) {
      created = true;
      EXPECT_EQ(report->created_fragments, 0)
          << "NP must not create partition fragments";
    }
  }
  EXPECT_TRUE(created);
  bool any_whole = false;
  for (const ViewInfo* v : engine.views().AllViews()) {
    if (v->whole_materialized) any_whole = true;
  }
  EXPECT_TRUE(any_whole);
}

TEST_F(EngineTest, EquiDepthCreatesConfiguredFragmentCount) {
  EngineOptions opts;
  opts.strategy = StrategyKind::kEquiDepth;
  opts.equi_depth_fragments = 6;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  int created_fragments = 0;
  for (int i = 0; i < 6; ++i) {
    auto report = engine.ProcessQuery(Q30(10000 + i * 10, 14000 + i * 10));
    ASSERT_TRUE(report.ok());
    created_fragments += report->created_fragments;
  }
  EXPECT_EQ(created_fragments, 6);
}

TEST_F(EngineTest, DeepSeaPartitionsFollowSelectionBoundaries) {
  EngineOptions opts;
  opts.enforce_block_lower_bound = false;
  // Materialize the join view on the first query, before its aggregate
  // starts caching the (identical) queries.
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(100000, 200000)).ok());
  }
  // Find the materialized partition and check a fragment boundary at
  // the selection endpoints.
  bool found_exact = false;
  for (const ViewInfo* v : engine.views().AllViews()) {
    for (const auto& [attr, part] : v->partitions) {
      (void)attr;
      for (const FragmentStats& f : part.fragments) {
        if (f.materialized && f.interval.lo == 100000.0 &&
            f.interval.hi == 200000.0) {
          found_exact = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_exact)
      << "expected a fragment exactly covering the hot selection range";
}

TEST_F(EngineTest, RefinementCreatesFragmentsAfterCreation) {
  EngineOptions opts;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  // Establish the view on one range...
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(50000, 150000)).ok());
  }
  // ...then shift to a sub-range repeatedly: DeepSea should refine.
  // (Fragments created in this phase are refinements — initial view
  // creation already happened above.)
  int refinements = 0;
  for (int i = 0; i < 8; ++i) {
    auto report = engine.ProcessQuery(Q30(60000, 90000));
    ASSERT_TRUE(report.ok());
    refinements += report->created_fragments;
  }
  EXPECT_GT(refinements, 0) << "expected progressive refinement";
}

TEST_F(EngineTest, NoRefineStrategyNeverRepartitions) {
  EngineOptions opts;
  opts.strategy = StrategyKind::kNoRefine;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(50000, 150000)).ok());
  }
  int post_creation_fragments = 0;
  for (int i = 0; i < 8; ++i) {
    auto report = engine.ProcessQuery(Q30(60000, 90000));
    ASSERT_TRUE(report.ok());
    post_creation_fragments += report->created_fragments;
  }
  EXPECT_EQ(post_creation_fragments, 0);
}

TEST_F(EngineTest, OverlappingModeKeepsParents) {
  EngineOptions opts;
  opts.overlapping_fragments = true;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(50000, 150000)).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(60000, 90000)).ok());
  }
  // With overlap allowed, some pair of materialized fragments overlaps.
  bool any_overlap = false;
  for (const ViewInfo* v : engine.views().AllViews()) {
    for (const auto& [attr, part] : v->partitions) {
      (void)attr;
      const auto mats = part.MaterializedIntervals();
      for (size_t i = 0; i < mats.size(); ++i) {
        for (size_t j = i + 1; j < mats.size(); ++j) {
          if (mats[i].Overlaps(mats[j])) any_overlap = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_overlap);
}

TEST_F(EngineTest, HorizontalModeStaysDisjoint) {
  EngineOptions opts;
  opts.overlapping_fragments = false;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(50000, 150000)).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(60000, 90000)).ok());
  }
  for (const ViewInfo* v : engine.views().AllViews()) {
    for (const auto& [attr, part] : v->partitions) {
      (void)attr;
      const auto mats = part.MaterializedIntervals();
      for (size_t i = 0; i < mats.size(); ++i) {
        for (size_t j = i + 1; j < mats.size(); ++j) {
          EXPECT_FALSE(mats[i].Overlaps(mats[j]))
              << mats[i].ToString() << " overlaps " << mats[j].ToString();
        }
      }
    }
  }
}

TEST_F(EngineTest, PoolBytesMatchesSimFs) {
  EngineOptions opts;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(10000, 14000)).ok());
  }
  EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
              1.0 + engine.PoolBytes() * 1e-9);
}

TEST_F(EngineTest, FragmentReadIsSmallerThanWholeView) {
  EngineOptions opts;
  opts.enforce_block_lower_bound = false;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog_, opts);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(Q30(10000 + i * 10, 14000 + i * 10)).ok());
  }
  auto report = engine.ProcessQuery(Q30(10100, 13900));
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->used_view.empty());
  EXPECT_GT(report->fragments_read, 0);
  // The (~1%) fragment read must be far cheaper than the base plan.
  EXPECT_LT(report->best_seconds, 0.3 * report->base_seconds);
}

}  // namespace
}  // namespace deepsea
