#include <gtest/gtest.h>

#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "rewrite/matcher.h"
#include "sim/cost_model.h"

namespace deepsea {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Table>(
        "fact", Schema({{"fact.k", DataType::kInt64},
                        {"fact.v", DataType::kDouble}}));
    fact->set_logical_row_count(10000000);
    fact->set_avg_row_bytes(100);
    AttributeHistogram hist(Interval(0, 1000), 100);
    hist.AddRange(Interval(0, 1000), 10000000);
    fact->SetHistogram("fact.k", hist);
    catalog_.Put(fact);
    auto dim = std::make_shared<Table>(
        "dim", Schema({{"dim.k", DataType::kInt64},
                       {"dim.g", DataType::kInt64}}));
    dim->set_logical_row_count(1000);
    dim->set_avg_row_bytes(50);
    catalog_.Put(dim);
  }

  PlanPtr JoinPlan() {
    return Join(Scan("fact"), Scan("dim"),
                Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k")));
  }

  // Registers the join as a tracked view with a materialized partition.
  ViewInfo* TrackJoinView(bool materialize) {
    auto sig = ComputeSignature(JoinPlan(), catalog_);
    EXPECT_TRUE(sig.ok());
    ViewInfo* view = views_.Track(JoinPlan(), *sig);
    index_.Insert(view->signature, view->id);
    // Register the view's table for the estimator.
    auto schema = view->plan->OutputSchema(catalog_);
    auto table = std::make_shared<Table>(view->id, *schema);
    table->set_logical_row_count(10000000);
    table->set_avg_row_bytes(150);
    AttributeHistogram hist(Interval(0, 1000), 100);
    hist.AddRange(Interval(0, 1000), 10000000);
    table->SetHistogram("fact.k", hist);
    catalog_.Put(table);
    view->stats.size_bytes = 10000000.0 * 150;
    view->stats.creation_cost = 500;
    PartitionState* part = view->EnsurePartition("fact.k", Interval(0, 1000));
    for (const Interval& iv :
         {Interval::ClosedOpen(0, 250), Interval::ClosedOpen(250, 500),
          Interval::ClosedOpen(500, 750), Interval(750, 1000)}) {
      FragmentStats* f = part->Track(iv, view->stats.size_bytes / 4);
      f->materialized = materialize;
    }
    return view;
  }

  Catalog catalog_;
  ViewCatalog views_;
  FilterTree index_;
  ClusterModel cluster_;
};

TEST_F(RewriteTest, FilterTreeExactLookup) {
  auto sig = ComputeSignature(JoinPlan(), catalog_);
  ASSERT_TRUE(sig.ok());
  FilterTree tree;
  tree.Insert(*sig, "v1");
  EXPECT_EQ(tree.Lookup(*sig), (std::vector<std::string>{"v1"}));
  EXPECT_EQ(tree.size(), 1u);
  tree.Remove(*sig, "v1");
  EXPECT_TRUE(tree.Lookup(*sig).empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(RewriteTest, FilterTreePrunesByRelations) {
  auto join_sig = ComputeSignature(JoinPlan(), catalog_);
  auto scan_sig = ComputeSignature(Scan("fact"), catalog_);
  ASSERT_TRUE(join_sig.ok());
  ASSERT_TRUE(scan_sig.ok());
  FilterTree tree;
  tree.Insert(*join_sig, "vjoin");
  EXPECT_TRUE(tree.Lookup(*scan_sig).empty());
}

TEST_F(RewriteTest, FilterTreeSeparatesAggregates) {
  auto join_sig = ComputeSignature(JoinPlan(), catalog_);
  auto agg_sig = ComputeSignature(
      Aggregate(JoinPlan(), {"dim.g"}, {{AggFunc::kCount, "", "n"}}), catalog_);
  ASSERT_TRUE(agg_sig.ok());
  FilterTree tree;
  tree.Insert(*join_sig, "vjoin");
  tree.Insert(*agg_sig, "vagg");
  EXPECT_EQ(tree.Lookup(*join_sig), (std::vector<std::string>{"vjoin"}));
  EXPECT_EQ(tree.Lookup(*agg_sig), (std::vector<std::string>{"vagg"}));
}

TEST_F(RewriteTest, CompensationRebuildsQueryRanges) {
  auto vsig = ComputeSignature(JoinPlan(), catalog_);
  auto qsig = ComputeSignature(
      Select(JoinPlan(), RangePredicate("fact.k", 10, 20)), catalog_);
  ASSERT_TRUE(vsig.ok());
  ASSERT_TRUE(qsig.ok());
  const ExprPtr comp = ViewMatcher::BuildCompensation(*vsig, *qsig);
  ASSERT_NE(comp, nullptr);
  const std::string s = comp->ToString();
  EXPECT_NE(s.find("fact.k >= 10"), std::string::npos);
  EXPECT_NE(s.find("fact.k <= 20"), std::string::npos);
}

TEST_F(RewriteTest, NoCompensationForIdenticalSignatures) {
  auto sig = ComputeSignature(Select(JoinPlan(), RangePredicate("fact.k", 1, 2)),
                              catalog_);
  ASSERT_TRUE(sig.ok());
  // Join equalities are enforced by the view itself.
  EXPECT_EQ(ViewMatcher::BuildCompensation(*sig, *sig), nullptr);
}

TEST_F(RewriteTest, MatcherFindsExecutableRewriting) {
  TrackJoinView(/*materialize=*/true);
  PlanCostEstimator estimator(&cluster_, &catalog_);
  ViewMatcher matcher(&views_, &index_, &catalog_, &estimator);
  const PlanPtr query = Aggregate(
      Select(JoinPlan(), RangePredicate("fact.k", 100, 200)), {"dim.g"},
      {{AggFunc::kCount, "", "n"}});
  auto rewritings = matcher.ComputeRewritings(query);
  ASSERT_TRUE(rewritings.ok());
  ASSERT_FALSE(rewritings->empty());
  const Rewriting& best = (*rewritings)[0];
  EXPECT_TRUE(best.executable);
  EXPECT_EQ(best.partition_attr, "fact.k");
  ASSERT_EQ(best.fragments.size(), 1u);  // [0,250) covers [100,200]
  EXPECT_EQ(best.fragments[0], Interval::ClosedOpen(0, 250));
  EXPECT_TRUE(best.has_query_range);
  EXPECT_EQ(best.query_range, Interval(100, 200));
}

TEST_F(RewriteTest, MatcherSpansMultipleFragments) {
  TrackJoinView(true);
  PlanCostEstimator estimator(&cluster_, &catalog_);
  ViewMatcher matcher(&views_, &index_, &catalog_, &estimator);
  const PlanPtr query =
      Select(JoinPlan(), RangePredicate("fact.k", 100, 600));
  auto rewritings = matcher.ComputeRewritings(query);
  ASSERT_TRUE(rewritings.ok());
  ASSERT_FALSE(rewritings->empty());
  // Among the rewritings (the bare-join subplan yields a whole-view
  // read; the selection subplan yields a fragment cover), the fragment
  // cover of [100, 600] spans three of the four quarter fragments.
  const Rewriting* frag_rw = nullptr;
  for (const Rewriting& rw : *rewritings) {
    if (!rw.fragments.empty()) frag_rw = &rw;
  }
  ASSERT_NE(frag_rw, nullptr);
  EXPECT_EQ(frag_rw->fragments.size(), 3u);
}

TEST_F(RewriteTest, UnmaterializedViewYieldsTrackedOnlyRewriting) {
  TrackJoinView(/*materialize=*/false);
  PlanCostEstimator estimator(&cluster_, &catalog_);
  ViewMatcher matcher(&views_, &index_, &catalog_, &estimator);
  const PlanPtr query = Select(JoinPlan(), RangePredicate("fact.k", 100, 200));
  auto rewritings = matcher.ComputeRewritings(query);
  ASSERT_TRUE(rewritings.ok());
  ASSERT_FALSE(rewritings->empty());
  EXPECT_FALSE((*rewritings)[0].executable);
}

TEST_F(RewriteTest, RewritingCheaperThanBase) {
  TrackJoinView(true);
  PlanCostEstimator estimator(&cluster_, &catalog_);
  ViewMatcher matcher(&views_, &index_, &catalog_, &estimator);
  const PlanPtr query = Select(JoinPlan(), RangePredicate("fact.k", 100, 200));
  auto base = estimator.Estimate(query);
  auto rewritings = matcher.ComputeRewritings(query);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(rewritings.ok());
  ASSERT_FALSE(rewritings->empty());
  EXPECT_LT((*rewritings)[0].est_seconds, base->seconds);
}

TEST_F(RewriteTest, NoMatchForDifferentJoin) {
  TrackJoinView(true);
  PlanCostEstimator estimator(&cluster_, &catalog_);
  ViewMatcher matcher(&views_, &index_, &catalog_, &estimator);
  // A self-join of fact has different relation classes.
  const PlanPtr query = Join(Scan("fact"), Scan("fact"),
                             Cmp(CompareOp::kEq, Col("fact.k"), Col("fact.k")));
  auto rewritings = matcher.ComputeRewritings(query);
  ASSERT_TRUE(rewritings.ok());
  EXPECT_TRUE(rewritings->empty());
}

}  // namespace
}  // namespace deepsea
