// Asynchronous materialization service tests: admission control,
// coalescing, staleness revalidation, drain/quiesce determinism, and
// the free-running overload soak (the TSan target for the queue and
// worker-pool discipline).
//
// Mode ladder covered here:
//  * kDrain — decisions route through admission control but execute
//    inside the query's commit, so every report and the final pool
//    fingerprint must be bit-identical to kInline.
//  * kAsync, workers=0 — decisions queue without draining; tests call
//    DrainAll()/Quiesce() at deterministic points, which makes the
//    whole intent -> revalidate -> fold lifecycle single-threaded and
//    exactly reproducible.
//  * kAsync, workers>0 — real background threads; determinism comes
//    from quiescing between queries (turnstile tests) or from
//    order-independent assertions (the soak).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "multitenant_harness.h"

#include "common/str_util.h"
#include "core/engine.h"
#include "core/materialization_service.h"
#include "core/shared_pool.h"
#include "exp/metrics.h"
#include "storage/fault_policy.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

using Mode = MaterializationConfig::Mode;

BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  SdssTraceModel sdss(SdssTraceModel::Config{}, 2017);
  o.item_sk_distribution = sdss.AccessDensity(420);
  return o;
}

EngineOptions Options(Mode mode, int workers) {
  EngineOptions o;
  o.strategy = StrategyKind::kDeepSea;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  o.materialization.mode = mode;
  o.materialization.workers = workers;
  return o;
}

/// submitted must account for every job exactly once: executed, failed
/// permanently, shed by admission, superseded by a newer same-target
/// job, dropped as stale at revalidation — or still sitting in the
/// queue (`queued`, zero after a quiesce/drain). Any imbalance means a
/// lost or double-counted fold.
void ExpectAccounting(const MaterializationService::StatsSnapshot& s,
                      size_t queued = 0) {
  EXPECT_EQ(s.submitted, s.executed + s.failed + s.shed + s.coalesced +
                             s.stale_dropped + static_cast<int64_t>(queued))
      << "executed=" << s.executed << " failed=" << s.failed
      << " shed=" << s.shed << " coalesced=" << s.coalesced
      << " stale_dropped=" << s.stale_dropped << " queued=" << queued;
}

// ---------------------------------------------------------------------
// kDrain == kInline, bit for bit.

TEST(MaterializationDrainTest, DrainModeIsBitIdenticalToInline) {
  const auto plans = mt::BuildPlans(mt::SdssTenantWorkload(60, 404));

  auto run = [&](Mode mode, std::vector<std::string>* reports) {
    Catalog catalog;
    EXPECT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
    DeepSeaEngine engine(&catalog, Options(mode, /*workers=*/0));
    for (const PlanPtr& plan : plans) {
      auto report = engine.ProcessQuery(plan);
      EXPECT_TRUE(report.ok());
      if (report.ok()) reports->push_back(mt::FormatTenantReport(*report));
    }
    if (mode == Mode::kDrain) {
      const MaterializationService* mat =
          engine.pool().materialization_service();
      EXPECT_NE(mat, nullptr);
      if (mat != nullptr) {
        const auto s = mat->stats();
        // Unbounded queue: every admitted intent executed inline.
        EXPECT_GT(s.submitted, 0);
        EXPECT_EQ(s.submitted, s.executed);
        EXPECT_EQ(s.shed, 0);
        ExpectAccounting(s);
      }
    } else {
      EXPECT_EQ(engine.pool().materialization_service(), nullptr);
    }
    return mt::PoolFingerprint(engine.pool());
  };

  std::vector<std::string> inline_reports, drain_reports;
  const std::string inline_fp = run(Mode::kInline, &inline_reports);
  const std::string drain_fp = run(Mode::kDrain, &drain_reports);

  ASSERT_EQ(inline_reports.size(), drain_reports.size());
  for (size_t i = 0; i < inline_reports.size(); ++i) {
    EXPECT_EQ(inline_reports[i], drain_reports[i]) << "query " << i;
  }
  EXPECT_EQ(inline_fp, drain_fp);
}

TEST(MaterializationDrainTest, ThreadedTurnstileMatchesSequentialReplay) {
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  std::vector<std::vector<PlanPtr>> plans;
  for (uint64_t seed : {121u, 232u, 343u}) {
    plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(25, seed)));
  }
  const std::vector<int> schedule = mt::ShuffledSchedule({25, 25, 25}, 19);

  EngineOptions opts = Options(Mode::kDrain, /*workers=*/0);
  Catalog seq_catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &seq_catalog).ok());
  const auto seq = mt::RunScheduled(&seq_catalog, opts, tenants, plans,
                                    schedule, /*threaded=*/false);
  Catalog thr_catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &thr_catalog).ok());
  const auto thr = mt::RunScheduled(&thr_catalog, opts, tenants, plans,
                                    schedule, /*threaded=*/true);

  ASSERT_EQ(seq.reports.size(), thr.reports.size());
  for (size_t t = 0; t < seq.reports.size(); ++t) {
    ASSERT_EQ(seq.reports[t].size(), thr.reports[t].size()) << tenants[t];
    for (size_t i = 0; i < seq.reports[t].size(); ++i) {
      EXPECT_EQ(seq.reports[t][i], thr.reports[t][i])
          << tenants[t] << " query " << i;
    }
  }
  EXPECT_EQ(seq.fingerprint, thr.fingerprint);

  // And the drain pool is the inline pool: admission control changed
  // nothing about what got materialized.
  Catalog inline_catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &inline_catalog).ok());
  const auto inl =
      mt::RunScheduled(&inline_catalog, Options(Mode::kInline, 0), tenants,
                       plans, schedule, /*threaded=*/false);
  EXPECT_EQ(seq.fingerprint, inl.fingerprint);
}

// ---------------------------------------------------------------------
// kAsync determinism: like RunScheduled, but quiesces the service at a
// fixed point in every slot so the fold order is part of the schedule.

struct AsyncRunResult {
  std::vector<std::vector<std::string>> reports;
  std::string fingerprint;
  MaterializationService::StatsSnapshot stats;
};

AsyncRunResult RunAsyncScheduled(const EngineOptions& options,
                                 const std::vector<std::string>& tenants,
                                 const std::vector<std::vector<PlanPtr>>& plans,
                                 const std::vector<int>& schedule,
                                 bool threaded) {
  Catalog catalog;
  EXPECT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  const int n = static_cast<int>(plans.size());
  SharedPool shared(&catalog, options);
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  for (int t = 0; t < n; ++t) {
    engines.push_back(
        std::make_unique<DeepSeaEngine>(&catalog, &shared, tenants[t]));
  }
  AsyncRunResult out;
  out.reports.resize(static_cast<size_t>(n));
  if (!threaded) {
    std::vector<size_t> next(static_cast<size_t>(n), 0);
    for (int who : schedule) {
      const size_t i = next[static_cast<size_t>(who)]++;
      auto report = engines[static_cast<size_t>(who)]->ProcessQuery(
          plans[static_cast<size_t>(who)][i]);
      EXPECT_TRUE(report.ok());
      if (report.ok()) {
        out.reports[static_cast<size_t>(who)].push_back(
            mt::FormatTenantReport(*report));
      }
      shared.pool()->QuiesceMaterialization();
    }
  } else {
    mt::Turnstile turnstile(schedule);
    std::vector<std::thread> threads;
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        for (const PlanPtr& plan : plans[static_cast<size_t>(t)]) {
          if (!turnstile.Await(t)) break;
          auto report = engines[static_cast<size_t>(t)]->ProcessQuery(plan);
          if (report.ok()) {
            out.reports[static_cast<size_t>(t)].push_back(
                mt::FormatTenantReport(*report));
          }
          // The slot owns the pool until Advance(): quiescing here puts
          // the background fold inside the scheduled slot, so the
          // commit order (stats fold, then decision fold) is exactly
          // the schedule regardless of worker timing.
          shared.pool()->QuiesceMaterialization();
          turnstile.Advance();
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  shared.pool()->QuiesceMaterialization();
  const MaterializationService* mat = shared.pool()->materialization_service();
  EXPECT_NE(mat, nullptr);
  if (mat != nullptr) out.stats = mat->stats();
  out.fingerprint = mt::PoolFingerprint(*shared.pool());
  return out;
}

// workers=0: folds happen on the quiescing (driver) thread, so even
// the per-query reports are deterministic and thread-count-invariant.
TEST(MaterializationAsyncTest, ScheduledAsyncMatchesSequentialReplay) {
  const std::vector<std::string> tenants = {"alice", "bob"};
  std::vector<std::vector<PlanPtr>> plans;
  for (uint64_t seed : {55u, 66u}) {
    plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(20, seed)));
  }
  const std::vector<int> schedule = mt::ShuffledSchedule({20, 20}, 23);
  const EngineOptions opts = Options(Mode::kAsync, /*workers=*/0);

  const AsyncRunResult seq =
      RunAsyncScheduled(opts, tenants, plans, schedule, /*threaded=*/false);
  const AsyncRunResult thr =
      RunAsyncScheduled(opts, tenants, plans, schedule, /*threaded=*/true);

  ASSERT_EQ(seq.reports.size(), thr.reports.size());
  for (size_t t = 0; t < seq.reports.size(); ++t) {
    ASSERT_EQ(seq.reports[t].size(), thr.reports[t].size()) << tenants[t];
    for (size_t i = 0; i < seq.reports[t].size(); ++i) {
      EXPECT_EQ(seq.reports[t][i], thr.reports[t][i])
          << tenants[t] << " query " << i;
    }
  }
  EXPECT_EQ(seq.fingerprint, thr.fingerprint);
  EXPECT_GT(seq.stats.executed, 0);
  ExpectAccounting(seq.stats);
  ExpectAccounting(thr.stats);
  EXPECT_EQ(seq.stats.executed, thr.stats.executed);
  EXPECT_EQ(seq.stats.stale_dropped, thr.stats.stale_dropped);
}

// workers=1: real background threads. Per-query reports may observe
// the pool mid-fold (pool_bytes_after races the worker benignly), but
// the quiesced pool state is still a function of the schedule alone.
TEST(MaterializationAsyncTest, WorkersOnTurnstileMatchesSequentialReplay) {
  const std::vector<std::string> tenants = {"alice", "bob"};
  std::vector<std::vector<PlanPtr>> plans;
  for (uint64_t seed : {77u, 88u}) {
    plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(20, seed)));
  }
  const std::vector<int> schedule = mt::ShuffledSchedule({20, 20}, 29);
  const EngineOptions opts = Options(Mode::kAsync, /*workers=*/1);

  const AsyncRunResult seq =
      RunAsyncScheduled(opts, tenants, plans, schedule, /*threaded=*/false);
  const AsyncRunResult thr =
      RunAsyncScheduled(opts, tenants, plans, schedule, /*threaded=*/true);
  const AsyncRunResult again =
      RunAsyncScheduled(opts, tenants, plans, schedule, /*threaded=*/false);

  EXPECT_EQ(seq.fingerprint, thr.fingerprint);
  EXPECT_EQ(seq.fingerprint, again.fingerprint);
  EXPECT_GT(seq.stats.executed, 0);
  ExpectAccounting(seq.stats);
  ExpectAccounting(thr.stats);
  EXPECT_EQ(seq.stats.executed, thr.stats.executed);
}

// ---------------------------------------------------------------------
// Queue mechanics (workers=0 so every state transition is explicit).

TEST(MaterializationAsyncTest, QueueBuildsUpAndDrainAllFolds) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, Options(Mode::kAsync, /*workers=*/0));
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  const auto plans = mt::BuildPlans(mt::SdssTenantWorkload(30, 909));
  for (const PlanPtr& plan : plans) {
    auto report = engine.ProcessQuery(plan);
    ASSERT_TRUE(report.ok());
  }
  EXPECT_GT(mat->QueueDepth(), 0u);
  EXPECT_GT(mat->QueueBytes(), 0.0);
  // Stats still folded in the foreground: the pool adapted its
  // statistics even though nothing materialized yet.
  EXPECT_EQ(engine.PoolBytes(), 0.0);

  mat->DrainAll();
  EXPECT_EQ(mat->QueueDepth(), 0u);
  EXPECT_EQ(mat->QueueBytes(), 0.0);
  const auto s = mat->stats();
  EXPECT_GT(s.executed, 0);
  ExpectAccounting(s);
  // The drained decisions materialized state.
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
              engine.PoolBytes() * 1e-9);
}

TEST(MaterializationAsyncTest, OverloadShedsInsteadOfBlocking) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts = Options(Mode::kAsync, /*workers=*/0);
  opts.materialization.max_queue_jobs = 2;
  MetricsObserver metrics;
  DeepSeaEngine engine(&catalog, opts);
  metrics.set_pool(&engine.pool());
  engine.set_observer(&metrics);
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  const auto plans = mt::BuildPlans(mt::SdssTenantWorkload(40, 111));
  for (size_t q = 0; q < plans.size(); ++q) {
    auto report = engine.ProcessQuery(plans[q]);
    // Overload never blocks or fails the query: it answers from the
    // current pool and the intent is shed.
    ASSERT_TRUE(report.ok()) << "query " << q;
    EXPECT_LE(mat->QueueDepth(), 2u) << "query " << q;
  }
  const auto s = mat->stats();
  EXPECT_GT(s.shed, 0);
  ExpectAccounting(s, mat->QueueDepth());

  // The overload is visible at scrape time.
  const auto snap = metrics.TakeSnapshot();
  EXPECT_TRUE(snap.pool.materialization.configured);
  EXPECT_EQ(snap.pool.materialization.shed, s.shed);
  EXPECT_EQ(snap.pool.materialization.queue_depth,
            static_cast<int64_t>(mat->QueueDepth()));

  mat->DrainAll();
  ExpectAccounting(mat->stats());
  metrics.set_pool(nullptr);
}

TEST(MaterializationAsyncTest, RepeatedIdenticalIntentsCoalesce) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, Options(Mode::kAsync, /*workers=*/0));
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
  ASSERT_TRUE(plan.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
    // Re-deciding the same materialization replaces the queued job in
    // place rather than queueing a duplicate. The folding statistics
    // can reshape the decision (and thus the coalesce key) a bounded
    // number of times, but the depth must stay far below the query
    // count.
    EXPECT_LE(mat->QueueDepth(), 2u) << "query " << i;
  }
  const auto s = mat->stats();
  EXPECT_GE(s.coalesced, 1);
  EXPECT_EQ(s.shed, 0);
  ExpectAccounting(s, mat->QueueDepth());

  mat->DrainAll();
  const auto after = mat->stats();
  ExpectAccounting(after);
  EXPECT_GT(after.executed, 0);
  EXPECT_GT(engine.PoolBytes(), 0.0);

  // The (once) materialized view now answers the query.
  auto report = engine.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->used_view.empty());
}

TEST(MaterializationAsyncTest, StaleIntentsDropAtRevalidation) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, Options(Mode::kAsync, /*workers=*/0));
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  // Two decisions against the same view with different ranges: distinct
  // coalesce keys, overlapping write footprints. The first fold
  // publishes writes on the view, which invalidates the second job's
  // read epoch, so revalidation drops it instead of folding a decision
  // planned against a pool that no longer exists.
  auto q1 = BigBenchTemplates::Build("Q30", 100000, 180000);
  auto q2 = BigBenchTemplates::Build("Q30", 140000, 220000);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(engine.ProcessQuery(*q1).ok());
  ASSERT_TRUE(engine.ProcessQuery(*q2).ok());
  ASSERT_EQ(mat->QueueDepth(), 2u);

  mat->DrainAll();
  const auto s = mat->stats();
  EXPECT_EQ(s.executed, 1);
  EXPECT_EQ(s.stale_dropped, 1);
  ExpectAccounting(s);
  // The dropped intent lost nothing durable: the pool is consistent
  // and the view from the first fold exists.
  EXPECT_GT(engine.PoolBytes(), 0.0);
  EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
              engine.PoolBytes() * 1e-9);
}

// ---------------------------------------------------------------------
// SaveState / LoadState with a non-empty queue.

TEST(MaterializationStateTest, SaveStateQuiescesQueuedIntents) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, Options(Mode::kAsync, /*workers=*/0));
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  const auto plans = mt::BuildPlans(mt::SdssTenantWorkload(15, 1234));
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(engine.ProcessQuery(plan).ok());
  }
  ASSERT_GT(mat->QueueDepth(), 0u);

  // SaveState quiesces first: queued intents fold (or drop as stale)
  // before the snapshot, so the saved state reflects them.
  auto state = engine.SaveState();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(mat->QueueDepth(), 0u);
  ExpectAccounting(mat->stats());
  EXPECT_GT(engine.PoolBytes(), 0.0);
  const std::string fp = mt::PoolFingerprint(engine.pool());

  // The blob round-trips bit-identically into a fresh engine (modulo
  // the load's own clock, which never runs backwards).
  Catalog catalog2;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
  DeepSeaEngine cold(&catalog2, Options(Mode::kAsync, /*workers=*/0));
  ASSERT_TRUE(cold.LoadState(*state).ok());
  auto state2 = cold.SaveState();
  ASSERT_TRUE(state2.ok());
  EXPECT_EQ(*state, *state2);
  EXPECT_NEAR(cold.PoolBytes(), engine.PoolBytes(),
              engine.PoolBytes() * 1e-9);

  // A save with nothing queued is the same save.
  auto state3 = engine.SaveState();
  ASSERT_TRUE(state3.ok());
  EXPECT_EQ(*state, *state3);
  EXPECT_EQ(fp, mt::PoolFingerprint(engine.pool()));
}

TEST(MaterializationStateTest, CorruptLoadDrainsQueueButLeavesPoolIntact) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, Options(Mode::kAsync, /*workers=*/0));
  MaterializationService* mat = engine.pool().materialization_service();
  ASSERT_NE(mat, nullptr);

  const auto plans = mt::BuildPlans(mt::SdssTenantWorkload(10, 4321));
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(engine.ProcessQuery(plan).ok());
  }
  ASSERT_GT(mat->QueueDepth(), 0u);

  // LoadState quiesces before parsing (pre-load intents must not fold
  // into the restored pool), so even a rejected blob drains the queue —
  // but the pool itself must be untouched by the failed load.
  const Status load = engine.LoadState("deepsea-state-v1 garbage\n!!!");
  EXPECT_FALSE(load.ok());
  EXPECT_EQ(mat->QueueDepth(), 0u);
  ExpectAccounting(mat->stats());
  const std::string fp_after = mt::PoolFingerprint(engine.pool());

  // Replaying quiesce + fingerprint on an identical engine that never
  // saw the corrupt blob yields the same pool: the failed load itself
  // changed nothing.
  Catalog catalog2;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
  DeepSeaEngine twin(&catalog2, Options(Mode::kAsync, /*workers=*/0));
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(twin.ProcessQuery(plan).ok());
  }
  twin.pool().QuiesceMaterialization();
  EXPECT_EQ(fp_after, mt::PoolFingerprint(twin.pool()));
}

// ---------------------------------------------------------------------
// Free-running overload soak: 8 engines, live workers, fault
// injection, and a queue bound tight enough to force sheds. No
// turnstile — assertions are order-independent. This is the TSan
// target for the materialization queue, worker pool, and the
// scrape-path lock order.

TEST(MaterializationSoakTest, FreeRunningOverloadSoak) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts = Options(Mode::kAsync, /*workers=*/4);
  opts.materialization.max_queue_jobs = 8;
  opts.pool_limit_bytes = 6e9;
  opts.fault.retry_backoff_seconds = 1.0;
  SharedPool shared(&catalog, opts);

  ScheduledFaultPolicy policy(/*seed=*/7070);
  FaultRule transient;
  transient.probability = 0.02;
  transient.transient = true;
  FaultRule permanent;
  permanent.probability = 0.01;
  permanent.permanent_code = StatusCode::kResourceExhausted;
  policy.AddRule(transient);
  policy.AddRule(permanent);
  shared.pool()->SetFaultPolicy(&policy);

  // Enough queries that >= 100 storage ops reach the fault policy even
  // under heavy shedding: with sharded structural commits the
  // foreground no longer serializes on the exclusive lock, so the
  // 8-job queue overflows (and sheds) much more aggressively than the
  // original 40-query sizing assumed.
  constexpr int kTenants = 8;
  constexpr int kQueriesEach = 80;
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  std::vector<std::vector<PlanPtr>> plans;
  for (int t = 0; t < kTenants; ++t) {
    engines.push_back(std::make_unique<DeepSeaEngine>(
        &catalog, &shared, StrFormat("tenant%d", t)));
    plans.push_back(mt::BuildPlans(
        mt::SdssTenantWorkload(kQueriesEach, 5000 + uint64_t(t) * 17)));
  }

  std::atomic<int64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      for (const PlanPtr& plan : plans[static_cast<size_t>(t)]) {
        auto report = engines[static_cast<size_t>(t)]->ProcessQuery(plan);
        EXPECT_TRUE(report.ok());
        if (report.ok()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Scrape concurrently with the run: TakeSnapshot takes the commit
  // shared lock then the queue lock, the exact order the workers and
  // Submit use, so TSan sees the full lock graph under load.
  MetricsObserver metrics;
  metrics.set_pool(shared.pool());
  for (int i = 0; i < 20; ++i) {
    const auto snap = metrics.TakeSnapshot();
    EXPECT_TRUE(snap.pool.materialization.configured);
    EXPECT_LE(snap.pool.materialization.queue_depth, 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& th : threads) th.join();
  shared.pool()->QuiesceMaterialization();
  metrics.set_pool(nullptr);

  // Every query answered despite overload and faults.
  EXPECT_EQ(answered.load(), kTenants * kQueriesEach);
  EXPECT_EQ(shared.pool()->clock(), kTenants * kQueriesEach);

  // Zero lost or duplicated folds.
  const MaterializationService* mat = shared.pool()->materialization_service();
  ASSERT_NE(mat, nullptr);
  const auto s = mat->stats();
  ExpectAccounting(s);
  EXPECT_GT(s.executed, 0);
  EXPECT_EQ(mat->QueueDepth(), 0u);

  // The fault schedule actually stressed the system.
  EXPECT_GE(policy.ops_seen(), 100);
  EXPECT_GT(policy.faults_injected(), 0);

  // Pool invariants hold after the storm: bound respected, bytes
  // backed by storage.
  const double pool_bytes = shared.pool()->PoolBytes();
  EXPECT_LE(pool_bytes, opts.pool_limit_bytes * 1.0001);
  EXPECT_NEAR(pool_bytes, shared.pool()->fs().TotalBytes("pool/"),
              pool_bytes * 1e-9 + 1.0);

  // CI's overload-soak step archives the injected-fault schedule.
  if (const char* csv_path = std::getenv("DEEPSEA_FAULT_CSV")) {
    std::FILE* f = std::fopen(csv_path, "w");
    ASSERT_NE(f, nullptr) << csv_path;
    std::string csv = StrFormat(
        "submitted,executed,failed,shed,coalesced,stale_dropped,faults,"
        "retries\n%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld\n",
        static_cast<long long>(s.submitted), static_cast<long long>(s.executed),
        static_cast<long long>(s.failed), static_cast<long long>(s.shed),
        static_cast<long long>(s.coalesced),
        static_cast<long long>(s.stale_dropped),
        static_cast<long long>(s.faults), static_cast<long long>(s.retries));
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
  }
}

}  // namespace
}  // namespace deepsea
