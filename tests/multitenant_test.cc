// Concurrency tests for multi-tenant engines sharing one PoolManager.
//
// The deterministic half drives N tenant engines through a
// schedule-controlled turnstile (tests/multitenant_harness.h) and
// asserts that the pool's final state is a function of the commit order
// alone: a threaded run pinned to a schedule is bit-identical to a
// single-threaded replay of the same schedule, and replaying a schedule
// twice reproduces the same fingerprint. The nondeterministic half is a
// free-running std::thread stress run (no turnstile) whose assertions
// are order-independent — it exists chiefly as the ThreadSanitizer
// target for the commit-lock discipline.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "multitenant_harness.h"

#include "core/engine.h"
#include "core/shared_pool.h"
#include "core/view_sizing.h"
#include "exp/trace.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

// The golden-trace dataset: 100GB BigBench-like tables with item_sk
// drawn from the SDSS access density.
BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  SdssTraceModel sdss(SdssTraceModel::Config{}, 2017);
  o.item_sk_distribution = sdss.AccessDensity(420);
  return o;
}

EngineOptions BaseOptions() {
  EngineOptions o;
  o.strategy = StrategyKind::kDeepSea;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

std::vector<std::vector<PlanPtr>> TenantPlans(const std::vector<uint64_t>& seeds,
                                              int queries_each) {
  std::vector<std::vector<PlanPtr>> plans;
  plans.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(queries_each, seed)));
  }
  return plans;
}

// --- deterministic interleaver ---

TEST(MultiTenantScheduleTest, ThreadedTurnstileMatchesSequentialReplay) {
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  const auto plans = TenantPlans({101, 202, 303}, /*queries_each=*/40);
  const std::vector<int> per_tenant(3, 40);

  for (uint64_t schedule_seed : {11u, 47u}) {
    const std::vector<int> schedule =
        mt::ShuffledSchedule(per_tenant, schedule_seed);

    Catalog seq_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &seq_catalog).ok());
    const mt::ScheduledRunResult seq = mt::RunScheduled(
        &seq_catalog, BaseOptions(), tenants, plans, schedule, /*threaded=*/false);

    Catalog thr_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &thr_catalog).ok());
    const mt::ScheduledRunResult thr = mt::RunScheduled(
        &thr_catalog, BaseOptions(), tenants, plans, schedule, /*threaded=*/true);

    // Same commit order => same pool state, bit for bit, no matter
    // whether the commits came from one thread or three.
    EXPECT_EQ(seq.fingerprint, thr.fingerprint)
        << "schedule seed " << schedule_seed;
    ASSERT_EQ(seq.reports.size(), thr.reports.size());
    for (size_t t = 0; t < seq.reports.size(); ++t) {
      ASSERT_EQ(seq.reports[t].size(), thr.reports[t].size()) << tenants[t];
      for (size_t i = 0; i < seq.reports[t].size(); ++i) {
        EXPECT_EQ(seq.reports[t][i], thr.reports[t][i])
            << tenants[t] << " query " << i << " (schedule seed "
            << schedule_seed << ")";
      }
    }
  }
}

// Schedule fuzz: N seeds × M schedule families. Every seeded random
// interleaving, run threaded through the turnstile over the sharded
// commit locks, must reproduce the sequential replay of the same
// commit order bit for bit — per-query reports included. This is the
// property that pins the sharded commit path: read-set validation and
// per-view shard locks may reorder nothing observable.
TEST(MultiTenantScheduleFuzzTest, SeededRandomSchedulesMatchSequentialReplay) {
  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  const auto plans = TenantPlans({811, 822, 833, 844}, /*queries_each=*/15);
  const std::vector<int> per_tenant(4, 15);

  for (uint64_t seed : {3u, 17u, 29u}) {
    for (int family = 0; family < 2; ++family) {
      const std::vector<int> schedule =
          family == 0 ? mt::RandomSchedule(per_tenant, seed)
                      : mt::ShuffledSchedule(per_tenant, seed);

      Catalog seq_catalog;
      ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &seq_catalog).ok());
      const mt::ScheduledRunResult seq =
          mt::RunScheduled(&seq_catalog, BaseOptions(), tenants, plans,
                           schedule, /*threaded=*/false);

      Catalog thr_catalog;
      ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &thr_catalog).ok());
      const mt::ScheduledRunResult thr =
          mt::RunScheduled(&thr_catalog, BaseOptions(), tenants, plans,
                           schedule, /*threaded=*/true);

      EXPECT_EQ(seq.fingerprint, thr.fingerprint)
          << "seed " << seed << " family " << family;
      ASSERT_EQ(seq.reports.size(), thr.reports.size());
      for (size_t t = 0; t < seq.reports.size(); ++t) {
        ASSERT_EQ(seq.reports[t].size(), thr.reports[t].size())
            << tenants[t] << " seed " << seed;
        for (size_t i = 0; i < seq.reports[t].size(); ++i) {
          EXPECT_EQ(seq.reports[t][i], thr.reports[t][i])
              << tenants[t] << " query " << i << " seed " << seed;
        }
      }
    }
  }
}

TEST(MultiTenantScheduleTest, PoolStateIsFunctionOfCommitOrderAlone) {
  const std::vector<std::string> tenants = {"alice", "bob"};
  const auto plans = TenantPlans({501, 502}, /*queries_each=*/30);
  const std::vector<int> schedule = mt::ShuffledSchedule({30, 30}, 9);

  std::string first;
  for (int run = 0; run < 2; ++run) {
    Catalog catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
    const mt::ScheduledRunResult r = mt::RunScheduled(
        &catalog, BaseOptions(), tenants, plans, schedule, /*threaded=*/false);
    EXPECT_GT(r.fingerprint.size(), 0u);
    if (run == 0) {
      first = r.fingerprint;
    } else {
      EXPECT_EQ(first, r.fingerprint) << "same schedule replayed differently";
    }
  }
}

// --- free-running stress (the ThreadSanitizer target) ---

void RunFreeRunningStress(int num_tenants, int queries_each) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 10e9;  // tight: forces eviction churn

  std::vector<uint64_t> seeds;
  std::vector<std::string> tenants;
  for (int t = 0; t < num_tenants; ++t) {
    seeds.push_back(900 + static_cast<uint64_t>(t));
    tenants.push_back("tenant" + std::to_string(t));
  }
  const auto plans = TenantPlans(seeds, queries_each);

  SharedPool shared(&catalog, options);
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  std::vector<std::unique_ptr<TraceObserver>> observers;
  for (int t = 0; t < num_tenants; ++t) {
    engines.push_back(
        std::make_unique<DeepSeaEngine>(&catalog, &shared, tenants[t]));
    observers.push_back(
        std::make_unique<TraceObserver>(tenants[t], /*trace=*/nullptr));
    engines[t]->set_observer(observers[t].get());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_tenants; ++t) {
    threads.emplace_back([&, t] {
      for (const PlanPtr& plan : plans[static_cast<size_t>(t)]) {
        auto report = engines[static_cast<size_t>(t)]->ProcessQuery(plan);
        if (!report.ok() || report->tenant_id != tenants[static_cast<size_t>(t)]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  // Every commit ticked the clock exactly once.
  EXPECT_EQ(shared.pool()->clock(),
            static_cast<int64_t>(num_tenants) * queries_each);
  // S_max holds no matter how the tenants interleaved...
  EXPECT_LE(shared.pool()->PoolBytesSnapshot(),
            options.pool_limit_bytes * 1.0001);
  // ...and pool accounting still matches the simulated FS exactly
  // (the pool is quiesced now, so the unlocked reads are safe).
  EXPECT_NEAR(shared.pool()->PoolBytes(),
              shared.pool()->fs().TotalBytes("pool/"),
              1.0 + shared.pool()->PoolBytes() * 1e-9);

  // Observer isolation: each engine's observer saw exactly its own
  // tenant's queries and mutations, nothing from the neighbours.
  for (int t = 0; t < num_tenants; ++t) {
    EXPECT_EQ(observers[t]->queries(), queries_each) << tenants[t];
    for (const auto& [tenant, stats] : observers[t]->tenants()) {
      (void)stats;
      EXPECT_EQ(tenant, tenants[t]);
    }
    // Every replan has exactly one recorded cause.
    const EngineTotals& totals = engines[t]->totals();
    EXPECT_EQ(totals.replans,
              totals.replans_conflict + totals.replans_spurious)
        << tenants[t];
  }
}

TEST(MultiTenantStressTest, FreeRunningTenantsKeepPoolConsistent) {
  RunFreeRunningStress(/*num_tenants=*/4, /*queries_each=*/500);
}

// The 8-engine variant: twice the thread count over the same tight
// pool, so commit-shard contention, in-flight validation, and the
// epoch ring all run hotter. Primarily a ThreadSanitizer target.
TEST(MultiTenantStressTest, FreeRunningEightEnginesKeepPoolConsistent) {
  RunFreeRunningStress(/*num_tenants=*/8, /*queries_each=*/250);
}

// --- single-tenant parity ---

TEST(MultiTenantParityTest, SoloTenantOverSharedPoolMatchesPrivateEngine) {
  const auto workload = mt::SdssTenantWorkload(120, 2017);
  const auto plans = mt::BuildPlans(workload);

  std::vector<std::string> private_lines;
  {
    Catalog catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
    DeepSeaEngine engine(&catalog, BaseOptions());
    for (const PlanPtr& plan : plans) {
      auto report = engine.ProcessQuery(plan);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->tenant_id, "");
      private_lines.push_back(mt::FormatTenantReport(*report));
    }
  }

  std::vector<std::string> shared_lines;
  {
    Catalog catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
    SharedPool shared(&catalog, BaseOptions());
    DeepSeaEngine engine(&catalog, &shared, "solo");
    for (const PlanPtr& plan : plans) {
      auto report = engine.ProcessQuery(plan);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->tenant_id, "solo");
      shared_lines.push_back(mt::FormatTenantReport(*report));
    }
  }

  // Identical except the tenant-id field: attaching to a SharedPool as
  // the only tenant changes nothing about Algorithm 1's decisions.
  ASSERT_EQ(private_lines.size(), shared_lines.size());
  for (size_t i = 0; i < private_lines.size(); ++i) {
    const std::string priv = private_lines[i].substr(private_lines[i].find(','));
    const std::string shrd = shared_lines[i].substr(shared_lines[i].find(','));
    EXPECT_EQ(priv, shrd) << "query " << i;
  }
}

// --- per-tenant benefit attribution ---

TEST(MultiTenantAttributionTest, PerTenantBenefitsSumToAggregate) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  const EngineOptions options = BaseOptions();
  SharedPool shared(&catalog, options);
  DeepSeaEngine alice(&catalog, &shared, "alice");
  DeepSeaEngine bob(&catalog, &shared, "bob");
  ASSERT_NE(alice.tenant_ord(), bob.tenant_ord());

  // Overlapping SDSS workloads: the tenants draw from the same template
  // pool, so they share views and both contribute benefit events.
  const auto plans_a = mt::BuildPlans(mt::SdssTenantWorkload(60, 7));
  const auto plans_b = mt::BuildPlans(mt::SdssTenantWorkload(60, 8));
  for (size_t i = 0; i < plans_a.size(); ++i) {
    ASSERT_TRUE(alice.ProcessQuery(plans_a[i]).ok());
    ASSERT_TRUE(bob.ProcessQuery(plans_b[i]).ok());
  }

  const DecayFunction decay(options.decay);
  const double t_now = static_cast<double>(shared.pool()->clock());
  bool any_shared_view = false;
  int views_with_events = 0;
  for (const ViewInfo* v : shared.pool()->views().AllViews()) {
    if (!v->stats.events().empty()) ++views_with_events;
    const double total = v->stats.AccumulatedBenefit(t_now, decay);
    const auto by_tenant = v->stats.AccumulatedBenefitByTenant(t_now, decay);
    double sum = 0.0;
    for (const auto& [ord, part] : by_tenant) {
      EXPECT_NEAR(part,
                  v->stats.AccumulatedBenefitForTenant(t_now, decay, ord),
                  1e-9 * (1.0 + part))
          << v->id;
      sum += part;
    }
    EXPECT_NEAR(sum, total, 1e-6 * (1.0 + total)) << v->id;
    if (by_tenant.count(alice.tenant_ord()) > 0 &&
        by_tenant.count(bob.tenant_ord()) > 0) {
      any_shared_view = true;
    }
    for (const auto& [attr, part] : v->partitions) {
      (void)attr;
      for (const FragmentStats& f : part.fragments) {
        const double hits = f.DecayedHits(t_now, decay);
        double hit_sum = 0.0;
        for (const auto& [ord, h] : f.DecayedHitsByTenant(t_now, decay)) {
          (void)ord;
          hit_sum += h;
        }
        EXPECT_NEAR(hit_sum, hits, 1e-6 * (1.0 + hits)) << v->id;
      }
    }
  }
  EXPECT_GT(views_with_events, 0);
  EXPECT_TRUE(any_shared_view)
      << "no view accumulated benefit from both tenants";
}

// --- observer tenancy ---

TEST(MultiTenantObserverTest, ObserversAreScopedToTheirEngine) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 8e9;  // force some evictions into the mix
  SharedPool shared(&catalog, options);
  DeepSeaEngine alice(&catalog, &shared, "alice");
  DeepSeaEngine bob(&catalog, &shared, "bob");
  TraceObserver obs_a("alice", nullptr);
  TraceObserver obs_b("bob", nullptr);
  alice.set_observer(&obs_a);
  bob.set_observer(&obs_b);

  const auto plans_a = mt::BuildPlans(mt::SdssTenantWorkload(40, 61));
  const auto plans_b = mt::BuildPlans(mt::SdssTenantWorkload(40, 62));
  int64_t created_views = 0;
  for (size_t i = 0; i < plans_a.size(); ++i) {
    auto ra = alice.ProcessQuery(plans_a[i]);
    auto rb = bob.ProcessQuery(plans_b[i]);
    ASSERT_TRUE(ra.ok() && rb.ok());
    created_views += static_cast<int64_t>(ra->created_views.size()) +
                     static_cast<int64_t>(rb->created_views.size());
  }

  // Each observer saw only its own engine's commits...
  EXPECT_EQ(obs_a.queries(), 40);
  EXPECT_EQ(obs_b.queries(), 40);
  for (const auto& [tenant, stats] : obs_a.tenants()) {
    (void)stats;
    EXPECT_EQ(tenant, "alice");
  }
  for (const auto& [tenant, stats] : obs_b.tenants()) {
    (void)stats;
    EXPECT_EQ(tenant, "bob");
  }
  // ...and together they account for every materialized view.
  EXPECT_EQ(obs_a.views_materialized() + obs_b.views_materialized(),
            created_views);
}

// --- EvictWholeView fires the same notifications the per-fragment
//     path does (regression for the bypassed-observer bug) ---

TEST(EvictWholeViewTest, NotifiesEveryEvictedPiece) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.strategy = StrategyKind::kNoPartition;  // whole-view pool entries
  SharedPool shared(&catalog, options);
  DeepSeaEngine engine(&catalog, &shared, "np");

  // Repeat one template until NP admits its view whole.
  std::string whole_id;
  for (int i = 0; i < 40 && whole_id.empty(); ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000, 140000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
    for (const ViewInfo* v : shared.pool()->views().AllViews()) {
      if (v->whole_materialized) {
        whole_id = v->id;
        break;
      }
    }
  }
  ASSERT_FALSE(whole_id.empty()) << "NP never materialized a whole view";

  PoolManager* pool = engine.mutable_pool();
  TraceObserver obs("np", nullptr);
  CommitGuard commit = pool->BeginCommit(&obs, "np", engine.tenant_ord());
  ViewInfo* view = pool->stat(commit)->Get(whole_id);
  ASSERT_NE(view, nullptr);

  // Plant a materialized fragment next to the whole materialization so
  // the eviction has two distinct pieces to announce.
  const Interval iv(0.0, 1000.0);
  PartitionState* part =
      view->EnsurePartition("item_sk", Interval(0.0, 400000.0));
  FragmentStats* frag = part->Track(iv, 5e6);
  frag->size_bytes = 5e6;
  frag->materialized = true;
  const std::string frag_path = FragmentPath(*view, "item_sk", iv);
  pool->fs(commit)->Put(frag_path, 5e6);

  Result<int> evicted = pool->EvictWholeView(view);
  commit.Release();

  ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
  EXPECT_EQ(*evicted, 2);  // the fragment + the whole materialization
  EXPECT_EQ(obs.evictions(), 2);
  ASSERT_EQ(obs.tenants().count("np"), 1u);
  EXPECT_EQ(obs.tenants().at("np").evictions, 2);
  EXPECT_FALSE(view->whole_materialized);
  EXPECT_FALSE(pool->fs().Exists(frag_path));
  EXPECT_FALSE(pool->fs().Exists("pool/" + whole_id + "/full"));
  EXPECT_EQ(view->MaterializedBytes(), 0.0);
}

}  // namespace
}  // namespace deepsea
