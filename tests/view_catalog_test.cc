#include "core/view_catalog.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

PlanSignature SigNamed(const std::string& relation) {
  PlanSignature sig;
  sig.relations = {relation};
  return sig;
}

TEST(ViewCatalogTest, TrackAssignsStableIds) {
  ViewCatalog views;
  ViewInfo* a = views.Track(Scan("a"), SigNamed("a"));
  ViewInfo* b = views.Track(Scan("b"), SigNamed("b"));
  EXPECT_EQ(a->id, "v1");
  EXPECT_EQ(b->id, "v2");
  EXPECT_EQ(views.size(), 2u);
}

TEST(ViewCatalogTest, TrackDedupesBySignature) {
  ViewCatalog views;
  ViewInfo* first = views.Track(Scan("a"), SigNamed("a"));
  ViewInfo* second = views.Track(Scan("a"), SigNamed("a"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(views.size(), 1u);
}

TEST(ViewCatalogTest, LookupBySignatureAndId) {
  ViewCatalog views;
  ViewInfo* a = views.Track(Scan("a"), SigNamed("a"));
  EXPECT_EQ(views.FindBySignature(SigNamed("a").ToString()), a);
  EXPECT_EQ(views.FindBySignature(SigNamed("zzz").ToString()), nullptr);
  EXPECT_EQ(views.Get("v1"), a);
  EXPECT_EQ(views.Get("v999"), nullptr);
}

TEST(ViewCatalogTest, PoolBytesSumsAcrossViews) {
  ViewCatalog views;
  ViewInfo* a = views.Track(Scan("a"), SigNamed("a"));
  a->stats.size_bytes = 100.0;
  a->whole_materialized = true;
  ViewInfo* b = views.Track(Scan("b"), SigNamed("b"));
  PartitionState* part = b->EnsurePartition("b.x", Interval(0, 10));
  FragmentStats* f1 = part->Track(Interval(0, 5), 40.0);
  f1->materialized = true;
  part->Track(Interval(5, 10), 60.0);  // tracked but not materialized
  // PoolBytes sums the per-view cached counters (the pool primitives
  // refresh them after every mutation; direct mutation must too).
  EXPECT_DOUBLE_EQ(views.PoolBytes(), 0.0);
  a->RefreshCachedBytes();
  b->RefreshCachedBytes();
  EXPECT_DOUBLE_EQ(views.PoolBytes(), 140.0);
  EXPECT_DOUBLE_EQ(views.PoolBytesExact(), 140.0);
}

TEST(PartitionStateTest, TrackIsIdempotent) {
  PartitionState part;
  part.attr = "t.a";
  part.domain = Interval(0, 100);
  FragmentStats* first = part.Track(Interval(0, 50), 10.0);
  first->RecordHit(1.0);
  FragmentStats* second = part.Track(Interval(0, 50), 99.0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->hits().size(), 1u);
  EXPECT_DOUBLE_EQ(second->size_bytes, 10.0);  // original estimate kept
  EXPECT_EQ(part.fragments.size(), 1u);
}

TEST(PartitionStateTest, FindDistinguishesOpenness) {
  PartitionState part;
  part.Track(Interval::ClosedOpen(0, 50), 1.0);
  EXPECT_NE(part.Find(Interval::ClosedOpen(0, 50)), nullptr);
  EXPECT_EQ(part.Find(Interval(0, 50)), nullptr);  // different bounds
}

TEST(PartitionStateTest, MaterializedViewsAndBytes) {
  PartitionState part;
  part.Track(Interval(0, 5), 10.0);
  part.Track(Interval(5, 9), 20.0);
  EXPECT_FALSE(part.AnyMaterialized());
  EXPECT_TRUE(part.MaterializedIntervals().empty());
  // NOTE: Track() may reallocate the fragment vector, so pointers from
  // earlier Track() calls must be re-resolved with Find().
  part.Find(Interval(0, 5))->materialized = true;
  part.Find(Interval(5, 9))->materialized = true;
  EXPECT_TRUE(part.AnyMaterialized());
  EXPECT_EQ(part.MaterializedIntervals().size(), 2u);
  EXPECT_DOUBLE_EQ(part.MaterializedBytes(), 30.0);
  EXPECT_EQ(part.TrackedIntervals().size(), 2u);
}

TEST(ViewInfoTest, InPoolViaWholeOrFragment) {
  ViewInfo view;
  EXPECT_FALSE(view.InPool());
  view.whole_materialized = true;
  EXPECT_TRUE(view.InPool());
  view.whole_materialized = false;
  PartitionState* part = view.EnsurePartition("t.a", Interval(0, 1));
  EXPECT_FALSE(view.InPool());
  part->Track(Interval(0, 1), 5.0)->materialized = true;
  EXPECT_TRUE(view.InPool());
}

TEST(ViewInfoTest, EnsurePartitionIdempotent) {
  ViewInfo view;
  PartitionState* a = view.EnsurePartition("t.a", Interval(0, 1));
  PartitionState* b = view.EnsurePartition("t.a", Interval(5, 9));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->domain, Interval(0, 1));  // first domain wins
  EXPECT_EQ(view.partitions.size(), 1u);
  view.EnsurePartition("t.b", Interval(0, 1));
  EXPECT_EQ(view.partitions.size(), 2u);
}

TEST(ViewInfoTest, GetPartitionConstAndMutable) {
  ViewInfo view;
  view.EnsurePartition("t.a", Interval(0, 1));
  EXPECT_NE(view.GetPartition("t.a"), nullptr);
  EXPECT_EQ(view.GetPartition("t.z"), nullptr);
  const ViewInfo& cview = view;
  EXPECT_NE(cview.GetPartition("t.a"), nullptr);
}

}  // namespace
}  // namespace deepsea
