#include "core/interval.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace deepsea {
namespace {

TEST(IntervalTest, EmptyDetection) {
  EXPECT_TRUE(Interval(5, 3).IsEmpty());
  EXPECT_TRUE(Interval(5, 5, false, true).IsEmpty());
  EXPECT_TRUE(Interval(5, 5, true, false).IsEmpty());
  EXPECT_FALSE(Interval(5, 5).IsEmpty());  // [5,5] is a point
  EXPECT_FALSE(Interval(1, 2).IsEmpty());
}

TEST(IntervalTest, ContainsPointRespectsOpenness) {
  const Interval closed(0, 10);
  EXPECT_TRUE(closed.Contains(0.0));
  EXPECT_TRUE(closed.Contains(10.0));
  const Interval half = Interval::ClosedOpen(0, 10);
  EXPECT_TRUE(half.Contains(0.0));
  EXPECT_FALSE(half.Contains(10.0));
  const Interval open = Interval::OpenClosed(0, 10);
  EXPECT_FALSE(open.Contains(0.0));
  EXPECT_TRUE(open.Contains(10.0));
  EXPECT_FALSE(closed.Contains(-0.001));
  EXPECT_FALSE(closed.Contains(10.001));
}

TEST(IntervalTest, ContainsInterval) {
  EXPECT_TRUE(Interval(0, 10).Contains(Interval(2, 8)));
  EXPECT_TRUE(Interval(0, 10).Contains(Interval(0, 10)));
  EXPECT_FALSE(Interval(0, 10).Contains(Interval(0, 11)));
  // [0,10) does not contain [0,10].
  EXPECT_FALSE(Interval::ClosedOpen(0, 10).Contains(Interval(0, 10)));
  // [0,10] contains (0,10).
  EXPECT_TRUE(Interval(0, 10).Contains(Interval(0, 10, false, false)));
  // Anything contains the empty interval.
  EXPECT_TRUE(Interval(0, 1).Contains(Interval(5, 3)));
}

TEST(IntervalTest, OverlapAtSharedBoundary) {
  // [0,5] and [5,10] share the point 5.
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(5, 10)));
  // [0,5) and [5,10] do not.
  EXPECT_FALSE(Interval::ClosedOpen(0, 5).Overlaps(Interval(5, 10)));
  // [0,5) and (5,10] certainly not.
  EXPECT_FALSE(Interval::ClosedOpen(0, 5).Overlaps(Interval::OpenClosed(5, 10)));
}

TEST(IntervalTest, IntersectComputesTightBounds) {
  const auto i = Interval(0, 10).Intersect(Interval(5, 15));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, Interval(5, 10));
  const auto j = Interval::ClosedOpen(0, 10).Intersect(Interval(5, 15));
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(*j, Interval::ClosedOpen(5, 10));
  EXPECT_FALSE(Interval(0, 1).Intersect(Interval(2, 3)).has_value());
}

TEST(IntervalTest, OverlapWidthAndFraction) {
  EXPECT_DOUBLE_EQ(Interval(0, 10).OverlapWidth(Interval(5, 20)), 5.0);
  EXPECT_DOUBLE_EQ(Interval(0, 10).OverlapFractionOf(Interval(5, 20)), 0.5);
  EXPECT_DOUBLE_EQ(Interval(0, 10).OverlapWidth(Interval(20, 30)), 0.0);
}

TEST(IntervalTest, SplitBeforeSemantics) {
  // Split [0,10] at 4 -> [0,4) and [4,10].
  const auto [l, r] = Interval(0, 10).SplitBefore(4);
  EXPECT_EQ(l, Interval::ClosedOpen(0, 4));
  EXPECT_EQ(r, Interval(4, 10));
  // Split at the lower bound: left empty.
  const auto [l2, r2] = Interval(0, 10).SplitBefore(0);
  EXPECT_TRUE(l2.IsEmpty());
  EXPECT_EQ(r2, Interval(0, 10));
}

TEST(IntervalTest, SplitAfterSemantics) {
  // Split [0,10] after 4 -> [0,4] and (4,10].
  const auto [l, r] = Interval(0, 10).SplitAfter(4);
  EXPECT_EQ(l, Interval(0, 4));
  EXPECT_EQ(r, Interval::OpenClosed(4, 10));
  const auto [l2, r2] = Interval(0, 10).SplitAfter(10);
  EXPECT_EQ(l2, Interval(0, 10));
  EXPECT_TRUE(r2.IsEmpty());
}

TEST(IntervalTest, SplitEqualCoversExactly) {
  const auto pieces = Interval(0, 10).SplitEqual(4);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces.front().lo, 0.0);
  EXPECT_EQ(pieces.back().hi, 10.0);
  // Pieces tile without gaps or overlaps.
  Fragmentation f(pieces);
  EXPECT_TRUE(f.IsHorizontalPartition(Interval(0, 10)));
}

TEST(IntervalTest, ToStringShowsOpenness) {
  EXPECT_EQ(Interval(1, 5).ToString(), "[1, 5]");
  EXPECT_EQ(Interval::ClosedOpen(1, 5).ToString(), "[1, 5)");
  EXPECT_EQ(Interval::OpenClosed(1, 5).ToString(), "(1, 5]");
}

TEST(FragmentationTest, ExampleOneFromPaper) {
  // Paper Example 1: I = {[1,2],[3,4],[5,6]} over integer domain; on a
  // continuous domain the integer gaps matter, so we use the continuous
  // analogue [1,2),[2,4),[4,6].
  Fragmentation partition({Interval::ClosedOpen(1, 2), Interval::ClosedOpen(2, 4),
                           Interval(4, 6)});
  EXPECT_TRUE(partition.IsHorizontalPartition(Interval(1, 6)));

  // I' with overlap {I4=[1,4], I5=[3,4], I6=[5,6]} is not a horizontal
  // partition (overlap), and with the gap (4,5) not even covering.
  Fragmentation overlapping(
      {Interval(1, 4), Interval(3, 4), Interval(5, 6)});
  EXPECT_FALSE(overlapping.IsDisjoint());
  EXPECT_FALSE(overlapping.Covers(Interval(1, 6)));

  // I'' = {[1,4],[4,6]} is again a horizontal partition (of [1,6]) if
  // we make the shared boundary half-open.
  Fragmentation again({Interval::ClosedOpen(1, 4), Interval(4, 6)});
  EXPECT_TRUE(again.IsHorizontalPartition(Interval(1, 6)));
}

TEST(FragmentationTest, OverlappingPartitioningOnlyNeedsCoverage) {
  Fragmentation f({Interval(0, 6), Interval(4, 10)});
  EXPECT_TRUE(f.IsOverlappingPartitioning(Interval(0, 10)));
  EXPECT_FALSE(f.IsHorizontalPartition(Interval(0, 10)));
}

TEST(FragmentationTest, DetectsGap) {
  Fragmentation f({Interval(0, 3), Interval(5, 10)});
  EXPECT_FALSE(f.Covers(Interval(0, 10)));
}

TEST(FragmentationTest, DetectsPointGapFromOpenBounds) {
  // [0,5) and (5,10] miss the point 5.
  Fragmentation f({Interval::ClosedOpen(0, 5), Interval::OpenClosed(5, 10)});
  EXPECT_FALSE(f.Covers(Interval(0, 10)));
  // Adding [5,5] closes it.
  f.Add(Interval(5, 5));
  EXPECT_TRUE(f.Covers(Interval(0, 10)));
}

TEST(FragmentationTest, SortedOrder) {
  Fragmentation f({Interval(5, 6), Interval(0, 2), Interval(0, 1)});
  const auto sorted = f.Sorted();
  EXPECT_EQ(sorted[0], Interval(0, 1));
  EXPECT_EQ(sorted[1], Interval(0, 2));
  EXPECT_EQ(sorted[2], Interval(5, 6));
}

// ---------- property-based sweeps ----------

class IntervalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalPropertyTest, SplitBeforeRoundTrips) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-100, 100);
    const double b = a + rng.Uniform(0.1, 100);
    const Interval iv(a, b);
    const double p = rng.Uniform(a - 10, b + 10);
    const auto [l, r] = iv.SplitBefore(p);
    // No point is lost or duplicated for p strictly inside.
    if (p > a && p <= b) {
      EXPECT_FALSE(l.IsEmpty());
      EXPECT_DOUBLE_EQ(l.Width() + r.Width(), iv.Width());
      EXPECT_FALSE(l.Overlaps(r));
      Fragmentation f({l, r});
      EXPECT_TRUE(f.Covers(iv));
    }
  }
}

TEST_P(IntervalPropertyTest, IntersectionIsCommutativeAndContained) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 300; ++i) {
    const Interval x(rng.Uniform(0, 50), rng.Uniform(50, 100),
                     rng.Bernoulli(0.5), rng.Bernoulli(0.5));
    const Interval y(rng.Uniform(0, 80), rng.Uniform(20, 100),
                     rng.Bernoulli(0.5), rng.Bernoulli(0.5));
    const auto xy = x.Intersect(y);
    const auto yx = y.Intersect(x);
    ASSERT_EQ(xy.has_value(), yx.has_value());
    if (xy.has_value()) {
      EXPECT_EQ(*xy, *yx);
      EXPECT_TRUE(x.Contains(*xy));
      EXPECT_TRUE(y.Contains(*xy));
    }
  }
}

TEST_P(IntervalPropertyTest, SplitEqualAlwaysPartitions) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.Uniform(-1000, 1000);
    const Interval iv(a, a + rng.Uniform(1, 500));
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    Fragmentation f(iv.SplitEqual(n));
    EXPECT_EQ(f.size(), static_cast<size_t>(n));
    EXPECT_TRUE(f.IsHorizontalPartition(iv));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace deepsea
