#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/value.h"

namespace deepsea {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_int64());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_TRUE(Value(1.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.0)), 0);
  EXPECT_LT(Value(int64_t{4}).Compare(Value(4.5)), 0);
  EXPECT_GT(Value(5.5).Compare(Value(int64_t{5})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(Value("a").Compare(Value()), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, OperatorsConsistent) {
  EXPECT_TRUE(Value(1.0) < Value(2.0));
  EXPECT_TRUE(Value(2.0) >= Value(2.0));
  EXPECT_TRUE(Value(int64_t{3}) != Value(int64_t{4}));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // int64(5) == double(5.0) so their hashes must match.
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(ValueTest, HashRowOrderSensitive) {
  const Row a = {Value(int64_t{1}), Value(int64_t{2})};
  const Row b = {Value(int64_t{2}), Value(int64_t{1})};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow({Value(int64_t{1}), Value(int64_t{2})}));
}

TEST(SchemaTest, ShortName) {
  ColumnDef c{"store_sales.item_sk", DataType::kInt64};
  EXPECT_EQ(c.ShortName(), "item_sk");
  ColumnDef plain{"x", DataType::kDouble};
  EXPECT_EQ(plain.ShortName(), "x");
}

TEST(SchemaTest, FindColumnQualifiedAndShort) {
  Schema s({{"t.a", DataType::kInt64}, {"t.b", DataType::kDouble}});
  EXPECT_EQ(s.FindColumn("t.a").value(), 0u);
  EXPECT_EQ(s.FindColumn("b").value(), 1u);
  EXPECT_FALSE(s.FindColumn("c").has_value());
}

TEST(SchemaTest, AmbiguousShortNameRejected) {
  Schema s({{"t.a", DataType::kInt64}, {"u.a", DataType::kInt64}});
  EXPECT_FALSE(s.FindColumn("a").has_value());
  EXPECT_TRUE(s.FindColumn("t.a").has_value());
}

TEST(SchemaTest, Concat) {
  Schema l({{"t.a", DataType::kInt64}});
  Schema r({{"u.b", DataType::kDouble}});
  Schema joined = l.Concat(r);
  ASSERT_EQ(joined.num_columns(), 2u);
  EXPECT_EQ(joined.column(0).name, "t.a");
  EXPECT_EQ(joined.column(1).name, "u.b");
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"t.a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "(t.a:INT64)");
}

}  // namespace
}  // namespace deepsea
