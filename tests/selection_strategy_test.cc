// Tests for the pluggable SelectionStrategy seam
// (core/selection_strategy.h; DESIGN.md, "Selection strategies"):
//
//  * name/parse round-trips, and the pinned correspondence between
//    SelectionStrategyKind ordinals and the MetricsObserver label set;
//  * greedy-as-strategy reproduces the historical inline knapsack scan
//    exactly (the golden trace tests pin the end-to-end bit-identity —
//    here the equivalence is checked at the resolver level, action by
//    action, including the benefit-score float accumulation order);
//  * the local-search never-worse property on seeded random candidate
//    sets — including the "search is alive" half: some instances must
//    improve strictly, which regressed once when the move generator
//    could provably never fire from a greedy-by-value seed;
//  * clustering merge correctness: a merged candidate covers its
//    members' ranges, non-mergeable content passes through untouched,
//    and the overlap knob behaves at its extremes;
//  * strategy-under-turnstile determinism: a threaded run pinned to a
//    commit schedule is bit-identical to a sequential replay with the
//    non-default strategies, reusing tests/multitenant_harness.h.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "multitenant_harness.h"

#include "common/rng.h"
#include "core/engine.h"
#include "core/selection_strategy.h"
#include "exp/metrics.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

using CandKind = SelectionCandidate::Kind;
using ActKind = SelectionAction::Kind;

constexpr SelectionStrategyKind kAllKinds[] = {
    SelectionStrategyKind::kGreedy,
    SelectionStrategyKind::kLocalSearch,
    SelectionStrategyKind::kClusterGreedy,
    SelectionStrategyKind::kClusterLocalSearch,
};

// --- names, parsing, metrics-label correspondence ---

TEST(SelectionStrategyNameTest, NamesParseBackAndMatchInstances) {
  for (SelectionStrategyKind kind : kAllKinds) {
    const char* name = SelectionStrategyName(kind);
    SelectionStrategyKind parsed;
    ASSERT_TRUE(ParseSelectionStrategy(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
    EXPECT_STREQ(SelectionStrategy::ForKind(kind)->name(), name);
  }
  SelectionStrategyKind parsed;
  EXPECT_TRUE(ParseSelectionStrategy("cluster", &parsed));
  EXPECT_EQ(parsed, SelectionStrategyKind::kClusterGreedy);
  EXPECT_FALSE(ParseSelectionStrategy("knapsack", &parsed));
  EXPECT_FALSE(ParseSelectionStrategy("", &parsed));
}

// The metrics exposition labels per-strategy series by ordinal; the
// registry's fixed name table must track SelectionStrategyKind order
// (metrics.cc indexes kSelectionStrategyNames with the kind's name).
TEST(SelectionStrategyNameTest, MetricsLabelTableMatchesKindOrder) {
  ASSERT_EQ(MetricsObserver::kSelectionStrategyCount,
            sizeof(kAllKinds) / sizeof(kAllKinds[0]));
  for (size_t i = 0; i < MetricsObserver::kSelectionStrategyCount; ++i) {
    EXPECT_STREQ(MetricsObserver::kSelectionStrategyNames[i],
                 SelectionStrategyName(kAllKinds[i]))
        << "ordinal " << i;
  }
}

// --- greedy-as-strategy equivalence with the historical inline scan ---

SelectionCandidate Item(CandKind kind, double value, double size,
                        double lo = 0.0, double hi = 0.0, int part_ord = -1,
                        bool mergeable = false) {
  SelectionCandidate c;
  c.kind = kind;
  c.value = value;
  c.size = size;
  c.interval = Interval(lo, hi);
  c.part_ord = part_ord;
  c.mergeable = mergeable;
  return c;
}

/// The pre-seam inline implementation, verbatim: stable sort by value
/// descending, admit while it fits, evict rejected pool content first,
/// then materialize admitted new content, benefit accumulated in
/// emission order.
SelectionDecision HistoricalGreedy(std::vector<SelectionCandidate> items,
                                   double budget) {
  std::stable_sort(items.begin(), items.end(),
                   [](const SelectionCandidate& a, const SelectionCandidate& b) {
                     return a.value > b.value;
                   });
  std::vector<const SelectionCandidate*> admit;
  std::vector<const SelectionCandidate*> reject;
  for (const SelectionCandidate& it : items) {
    if (it.size <= budget) {
      admit.push_back(&it);
      budget -= it.size;
    } else {
      reject.push_back(&it);
    }
  }
  SelectionDecision decision;
  for (const SelectionCandidate* it : reject) {
    if (it->kind == CandKind::kPoolWhole) {
      SelectionAction a;
      a.kind = ActKind::kEvictWholeView;
      a.view = it->view;
      a.size_bytes = it->size;
      decision.actions.push_back(a);
    } else if (it->kind == CandKind::kPoolFragment) {
      SelectionAction a;
      a.kind = ActKind::kEvictFragment;
      a.view = it->view;
      a.part = it->part;
      a.interval = it->interval;
      a.size_bytes = it->size;
      decision.actions.push_back(a);
    }
  }
  for (const SelectionCandidate* it : admit) {
    SelectionAction a;
    a.view = it->view;
    a.part = it->part;
    a.interval = it->interval;
    a.size_bytes = it->size;
    switch (it->kind) {
      case CandKind::kNewView:
        a.kind = ActKind::kMaterializeView;
        break;
      case CandKind::kNewViewFragment:
        a.kind = ActKind::kMaterializeViewFragment;
        break;
      case CandKind::kNewFragment:
        a.kind = ActKind::kMaterializeRefinement;
        break;
      default:
        continue;
    }
    decision.benefit_score += it->value;
    decision.actions.push_back(a);
  }
  return decision;
}

SelectionInput RandomInstance(uint64_t seed, int items, int parts,
                              double budget_fraction) {
  Rng rng(seed);
  SelectionInput in;
  double total = 0.0;
  for (int i = 0; i < items; ++i) {
    SelectionCandidate c;
    c.kind = static_cast<CandKind>(rng.UniformInt(0, 4));
    c.value = rng.Bernoulli(0.15) ? 0.0 : rng.Uniform(0.1, 100.0);
    c.size = rng.Uniform(1e6, 5e8);
    if (c.kind == CandKind::kNewFragment ||
        c.kind == CandKind::kNewViewFragment) {
      c.part_ord = static_cast<int>(rng.UniformInt(0, parts - 1));
      c.mergeable = true;
      const double lo = rng.Uniform(0.0, 350000.0);
      c.interval = Interval(lo, lo + rng.Uniform(1000.0, 50000.0));
    }
    total += c.size;
    in.items.push_back(c);
  }
  in.budget_bytes = budget_fraction * total;
  return in;
}

TEST(GreedyStrategyTest, BitIdenticalToHistoricalInlineScan) {
  for (uint64_t seed : {1u, 2u, 3u, 40u, 500u}) {
    SelectionInput in = RandomInstance(seed, 64, 5, 0.4);
    const SelectionDecision expected = HistoricalGreedy(in.items, in.budget_bytes);
    const SelectionResolution res =
        SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy)->Resolve(in);
    // Exact equality, including the float accumulation order — this is
    // the resolver-level half of the golden-trace bit-identity pin.
    EXPECT_EQ(res.decision.benefit_score, expected.benefit_score);
    ASSERT_EQ(res.decision.actions.size(), expected.actions.size());
    for (size_t i = 0; i < expected.actions.size(); ++i) {
      EXPECT_EQ(res.decision.actions[i].kind, expected.actions[i].kind) << i;
      EXPECT_EQ(res.decision.actions[i].interval, expected.actions[i].interval)
          << i;
      EXPECT_EQ(res.decision.actions[i].size_bytes,
                expected.actions[i].size_bytes)
          << i;
    }
    EXPECT_EQ(res.swaps_applied, 0);
    EXPECT_EQ(res.candidates_merged, 0);
    EXPECT_EQ(res.items_considered, static_cast<int>(in.items.size()));
  }
}

TEST(GreedyStrategyTest, UncontendedKnapsackAdmitsEverythingUnflagged) {
  SelectionInput in;
  in.items.push_back(Item(CandKind::kNewFragment, 5.0, 100.0));
  in.items.push_back(Item(CandKind::kPoolFragment, 1.0, 100.0));
  in.budget_bytes = 1000.0;
  const SelectionResolution res =
      SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy)->Resolve(in);
  EXPECT_FALSE(res.contended);
  // Admitted pool content needs no action; the new fragment is the
  // only materialization.
  ASSERT_EQ(res.decision.actions.size(), 1u);
  EXPECT_EQ(res.decision.actions[0].kind, ActKind::kMaterializeRefinement);
  EXPECT_EQ(res.objective_value, 6.0);
  EXPECT_EQ(res.decision.benefit_score, 5.0);
}

TEST(GreedyStrategyTest, EvictionsPrecedeMaterializations) {
  SelectionInput in;
  in.items.push_back(Item(CandKind::kPoolWhole, 1.0, 600.0));
  in.items.push_back(Item(CandKind::kNewView, 9.0, 500.0));
  in.items.push_back(Item(CandKind::kPoolFragment, 0.5, 300.0, 10.0, 20.0));
  in.budget_bytes = 800.0;
  const SelectionResolution res =
      SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy)->Resolve(in);
  EXPECT_TRUE(res.contended);
  // Value order: new view (9) admitted, pool whole (1) no longer fits,
  // pool fragment (0.5) fits the residual. Evictions come first.
  ASSERT_EQ(res.decision.actions.size(), 2u);
  EXPECT_EQ(res.decision.actions[0].kind, ActKind::kEvictWholeView);
  EXPECT_EQ(res.decision.actions[1].kind, ActKind::kMaterializeView);
  EXPECT_EQ(res.objective_value, 9.5);
}

// --- local search: never worse, and actually alive ---

TEST(LocalSearchStrategyTest, NeverWorseThanGreedyOnSeededInstances) {
  const SelectionStrategy* greedy =
      SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy);
  const SelectionStrategy* ls =
      SelectionStrategy::ForKind(SelectionStrategyKind::kLocalSearch);
  const SelectionStrategy* cg =
      SelectionStrategy::ForKind(SelectionStrategyKind::kClusterGreedy);
  const SelectionStrategy* cls =
      SelectionStrategy::ForKind(SelectionStrategyKind::kClusterLocalSearch);
  int strict_improvements = 0;
  for (int s = 0; s < 200; ++s) {
    const SelectionInput in = RandomInstance(7000 + s, 80, 6, 0.4);
    const SelectionResolution g = greedy->Resolve(in);
    const SelectionResolution l = ls->Resolve(in);
    ASSERT_GE(l.objective_value, g.objective_value - 1e-9) << "seed " << s;
    if (l.objective_value > g.objective_value + 1e-9) ++strict_improvements;
    EXPECT_LE(l.swaps_applied, in.config.local_search_max_swaps);
    // The clustered pair resolves the same reduced candidate set, so
    // the invariant holds there too.
    const SelectionResolution gc = cg->Resolve(in);
    const SelectionResolution lc = cls->Resolve(in);
    ASSERT_GE(lc.objective_value, gc.objective_value - 1e-9) << "seed " << s;
  }
  // The alive check: a local search that can never improve on greedy
  // (as a too-weak move generator once guaranteed) passes never-worse
  // trivially — require real improvements on this instance family.
  EXPECT_GT(strict_improvements, 0);
}

TEST(LocalSearchStrategyTest, ResultRespectsBudget) {
  for (int s = 0; s < 50; ++s) {
    const SelectionInput in = RandomInstance(8100 + s, 60, 4, 0.35);
    const SelectionResolution res =
        SelectionStrategy::ForKind(SelectionStrategyKind::kLocalSearch)
            ->Resolve(in);
    // Admitted bytes = kept pool content + materialized new content.
    double pool_total = 0.0;
    for (const SelectionCandidate& it : in.items) {
      if (it.kind == CandKind::kPoolFragment ||
          it.kind == CandKind::kPoolWhole) {
        pool_total += it.size;
      }
    }
    double admitted = pool_total;
    for (const SelectionAction& a : res.decision.actions) {
      switch (a.kind) {
        case ActKind::kEvictWholeView:
        case ActKind::kEvictFragment:
          admitted -= a.size_bytes;
          break;
        default:
          admitted += a.size_bytes;
          break;
      }
    }
    EXPECT_LE(admitted, in.budget_bytes * (1.0 + 1e-12)) << "seed " << s;
  }
}

TEST(LocalSearchStrategyTest, SwapBudgetZeroReproducesGreedy) {
  SelectionInput in = RandomInstance(4242, 80, 6, 0.4);
  in.config.local_search_max_swaps = 0;
  in.config.local_search_max_rounds = 0;
  const SelectionResolution g =
      SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy)->Resolve(in);
  const SelectionResolution l =
      SelectionStrategy::ForKind(SelectionStrategyKind::kLocalSearch)
          ->Resolve(in);
  EXPECT_EQ(l.objective_value, g.objective_value);
  EXPECT_EQ(l.decision.benefit_score, g.decision.benefit_score);
  EXPECT_EQ(l.decision.actions.size(), g.decision.actions.size());
  EXPECT_EQ(l.swaps_applied, 0);
}

// A hand-built instance where greedy-by-value is provably suboptimal:
// one large cheap-ish item admitted early holds bytes that two
// higher-total-value rejected items need.
TEST(LocalSearchStrategyTest, EvictionRefillMoveFires) {
  SelectionInput in;
  // Greedy admits A (value 10, size 1000) exhausting the budget; B and
  // C (value 6 + 6, sizes 500 each) are rejected. Local search evicts
  // A and refills with B + C: objective 12 > 10.
  in.items.push_back(Item(CandKind::kNewView, 10.0, 1000.0));
  in.items.push_back(Item(CandKind::kNewView, 6.0, 500.0));
  in.items.push_back(Item(CandKind::kNewView, 6.0, 500.0));
  in.budget_bytes = 1000.0;
  const SelectionResolution g =
      SelectionStrategy::ForKind(SelectionStrategyKind::kGreedy)->Resolve(in);
  EXPECT_EQ(g.objective_value, 10.0);
  const SelectionResolution l =
      SelectionStrategy::ForKind(SelectionStrategyKind::kLocalSearch)
          ->Resolve(in);
  EXPECT_EQ(l.objective_value, 12.0);
  EXPECT_EQ(l.swaps_applied, 1);
  ASSERT_EQ(l.decision.actions.size(), 2u);
  EXPECT_EQ(l.decision.actions[0].kind, ActKind::kMaterializeView);
  EXPECT_EQ(l.decision.actions[1].kind, ActKind::kMaterializeView);
}

// --- clustering pre-pass ---

TEST(ClusterCandidatesTest, MergedCandidateCoversItsMembers) {
  SelectionConfig config;
  config.cluster_min_overlap = 0.5;
  std::vector<SelectionCandidate> items;
  items.push_back(
      Item(CandKind::kNewFragment, 4.0, 100.0, 0.0, 100.0, 0, true));
  items.push_back(
      Item(CandKind::kNewFragment, 3.0, 100.0, 40.0, 140.0, 0, true));
  items.push_back(
      Item(CandKind::kNewFragment, 2.0, 80.0, 90.0, 180.0, 0, true));
  int merged_away = -1;
  const std::vector<SelectionCandidate> out =
      ClusterCandidates(items, config, &merged_away);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(merged_away, 2);
  // The hull covers every member's query range.
  for (const SelectionCandidate& member : items) {
    EXPECT_LE(out[0].interval.lo, member.interval.lo);
    EXPECT_GE(out[0].interval.hi, member.interval.hi);
  }
  EXPECT_EQ(out[0].kind, CandKind::kNewFragment);
  // Size stays physical: at least the largest member, at most the sum.
  EXPECT_GE(out[0].size, 100.0);
  EXPECT_LE(out[0].size, 280.0);
  // Value keeps at least the strongest member's evidence.
  EXPECT_GE(out[0].value, 4.0);
}

TEST(ClusterCandidatesTest, DisjointAndNonMergeableContentPassesThrough) {
  SelectionConfig config;
  config.cluster_min_overlap = 0.5;
  std::vector<SelectionCandidate> items;
  // Disjoint ranges on the same partition: no merge.
  items.push_back(Item(CandKind::kNewFragment, 4.0, 10.0, 0.0, 10.0, 0, true));
  items.push_back(
      Item(CandKind::kNewFragment, 3.0, 10.0, 50.0, 60.0, 0, true));
  // Overlapping but on different partitions: no merge.
  items.push_back(
      Item(CandKind::kNewFragment, 2.0, 10.0, 0.0, 10.0, 1, true));
  // Overlapping same-partition but not mergeable (planned fragments of
  // an uncreated view are admitted as a unit): no merge.
  items.push_back(
      Item(CandKind::kNewViewFragment, 2.0, 10.0, 0.0, 10.0, 0, false));
  // Pool content is never merged.
  items.push_back(Item(CandKind::kPoolFragment, 1.0, 10.0, 0.0, 10.0, 0, true));
  int merged_away = -1;
  const std::vector<SelectionCandidate> out =
      ClusterCandidates(items, config, &merged_away);
  EXPECT_EQ(merged_away, 0);
  ASSERT_EQ(out.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i].kind, items[i].kind) << i;
    EXPECT_EQ(out[i].value, items[i].value) << i;
    EXPECT_EQ(out[i].interval, items[i].interval) << i;
  }
}

TEST(ClusterCandidatesTest, ExactOverlapKnobMergesOnlyDuplicates) {
  SelectionConfig config;
  config.cluster_min_overlap = 1.0;
  std::vector<SelectionCandidate> items;
  items.push_back(
      Item(CandKind::kNewFragment, 4.0, 100.0, 0.0, 100.0, 0, true));
  items.push_back(
      Item(CandKind::kNewFragment, 3.0, 100.0, 0.0, 100.0, 0, true));
  // 90% overlap — below the exact-duplicate bar.
  items.push_back(
      Item(CandKind::kNewFragment, 2.0, 100.0, 10.0, 110.0, 0, true));
  int merged_away = -1;
  const std::vector<SelectionCandidate> out =
      ClusterCandidates(items, config, &merged_away);
  EXPECT_EQ(merged_away, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].interval, Interval(0.0, 100.0));
  EXPECT_EQ(out[1].interval, Interval(10.0, 110.0));
}

TEST(ClusterCandidatesTest, ZeroOverlapKnobStillRequiresOverlap) {
  SelectionConfig config;
  config.cluster_min_overlap = 0.0;  // clamped: disjoint never merges
  std::vector<SelectionCandidate> items;
  items.push_back(Item(CandKind::kNewFragment, 4.0, 10.0, 0.0, 10.0, 0, true));
  items.push_back(
      Item(CandKind::kNewFragment, 3.0, 10.0, 20.0, 30.0, 0, true));
  int merged_away = -1;
  const std::vector<SelectionCandidate> out =
      ClusterCandidates(items, config, &merged_away);
  EXPECT_EQ(merged_away, 0);
  EXPECT_EQ(out.size(), 2u);
}

// --- engine integration: telemetry stamping ---

BigBenchDataset::Options SmallData() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  return o;
}

TEST(SelectionStrategyEngineTest, ReportsStampTheResolvingStrategy) {
  for (SelectionStrategyKind kind : kAllKinds) {
    Catalog catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &catalog).ok());
    EngineOptions options;
    options.selection.kind = kind;
    options.pool_limit_bytes = 2e9;  // tight enough to stay contended
    DeepSeaEngine engine(&catalog, options);
    Rng rng(99);
    for (int i = 0; i < 10; ++i) {
      const double lo = rng.Uniform(50000.0, 300000.0);
      auto plan = BigBenchTemplates::Build("Q30", lo, lo + 20000.0);
      ASSERT_TRUE(plan.ok());
      auto report = engine.ProcessQuery(*plan);
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->selection_strategy, SelectionStrategyName(kind));
      EXPECT_GE(report->selection_candidates, 0);
    }
  }
}

// --- determinism under the turnstile ---

EngineOptions StrategyOptions(SelectionStrategyKind kind) {
  EngineOptions o;
  o.strategy = StrategyKind::kDeepSea;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  o.pool_limit_bytes = 4e9;  // tight: the strategies actually diverge
  o.selection.kind = kind;
  return o;
}

TEST(SelectionStrategyScheduleTest, TurnstileMatchesSequentialReplay) {
  const std::vector<std::string> tenants = {"alice", "bob"};
  std::vector<std::vector<PlanPtr>> plans;
  plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(25, 404)));
  plans.push_back(mt::BuildPlans(mt::SdssTenantWorkload(25, 505)));
  const std::vector<int> per_tenant(2, 25);

  for (SelectionStrategyKind kind : {SelectionStrategyKind::kLocalSearch,
                                     SelectionStrategyKind::kClusterLocalSearch}) {
    const std::vector<int> schedule = mt::ShuffledSchedule(per_tenant, 31);

    Catalog seq_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &seq_catalog).ok());
    const mt::ScheduledRunResult seq =
        mt::RunScheduled(&seq_catalog, StrategyOptions(kind), tenants, plans,
                         schedule, /*threaded=*/false);

    Catalog thr_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &thr_catalog).ok());
    const mt::ScheduledRunResult thr =
        mt::RunScheduled(&thr_catalog, StrategyOptions(kind), tenants, plans,
                         schedule, /*threaded=*/true);

    EXPECT_EQ(seq.fingerprint, thr.fingerprint)
        << SelectionStrategyName(kind);
    ASSERT_EQ(seq.reports.size(), thr.reports.size());
    for (size_t t = 0; t < seq.reports.size(); ++t) {
      EXPECT_EQ(seq.reports[t], thr.reports[t])
          << SelectionStrategyName(kind) << " tenant " << t;
    }
  }
}

}  // namespace
}  // namespace deepsea
