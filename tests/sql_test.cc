#include "sql/parser.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/pushdown.h"
#include "plan/signature.h"
#include "sql/lexer.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

// ---------- lexer ----------

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("SeLeCt from JOIN on WHERE group BY as AND or NOT between");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 13u);  // 12 keywords + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[11].kind, TokenKind::kBetween);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("123 4.5 .5 1e3 'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 123.0);
  EXPECT_EQ((*tokens)[1].number, 4.5);
  EXPECT_EQ((*tokens)[2].number, 0.5);
  EXPECT_EQ((*tokens)[3].number, 1000.0);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[4].text, "hello world");
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("= != <> < <= > >= + - * / ( ) , .");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGe);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("select 'oops").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("select @x").ok());
}

// ---------- parser ----------

TEST(ParserTest, SelectStarFromTable) {
  auto plan = ParseSql("SELECT * FROM store_sales");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), PlanKind::kScan);
  EXPECT_EQ((*plan)->table_name(), "store_sales");
}

TEST(ParserTest, ProjectionWithAliases) {
  auto plan = ParseSql("SELECT t.a, t.b AS bee, t.a + 1 AS next FROM t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->kind(), PlanKind::kProject);
  EXPECT_EQ((*plan)->project_names()[0], "t.a");
  EXPECT_EQ((*plan)->project_names()[1], "bee");
  EXPECT_EQ((*plan)->project_names()[2], "next");
}

TEST(ParserTest, WhereSitsAboveJoin) {
  auto plan = ParseSql(
      "SELECT * FROM store_sales JOIN item ON store_sales.item_sk = "
      "item.item_sk WHERE store_sales.item_sk BETWEEN 10 AND 20");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*plan)->child(0)->kind(), PlanKind::kJoin);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto plan = ParseSql("SELECT * FROM t WHERE t.a BETWEEN 5 AND 9");
  ASSERT_TRUE(plan.ok());
  const RangeExtraction ex = ExtractRanges((*plan)->predicate());
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_EQ(ex.ranges[0].lo, 5.0);
  EXPECT_EQ(ex.ranges[0].hi, 9.0);
}

TEST(ParserTest, MultipleJoinsLeftDeep) {
  auto plan = ParseSql(
      "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*plan)->child(0)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*plan)->child(1)->table_name(), "c");
  EXPECT_EQ((*plan)->child(0)->child(0)->table_name(), "a");
}

TEST(ParserTest, InnerJoinTolerated) {
  auto plan = ParseSql("SELECT * FROM a INNER JOIN b ON a.x = b.x");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), PlanKind::kJoin);
}

TEST(ParserTest, GroupByAggregates) {
  auto plan = ParseSql(
      "SELECT item.category_id, COUNT(*) AS cnt, SUM(store_sales.net_paid) AS"
      " revenue FROM store_sales JOIN item ON store_sales.item_sk ="
      " item.item_sk GROUP BY item.category_id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->kind(), PlanKind::kAggregate);
  EXPECT_EQ((*plan)->group_by(), (std::vector<std::string>{"item.category_id"}));
  ASSERT_EQ((*plan)->aggregates().size(), 2u);
  EXPECT_EQ((*plan)->aggregates()[0].fn, AggFunc::kCount);
  EXPECT_EQ((*plan)->aggregates()[1].fn, AggFunc::kSum);
  EXPECT_EQ((*plan)->aggregates()[1].output_name, "revenue");
}

TEST(ParserTest, AggregateWithoutAliasGetsDerivedName) {
  auto plan = ParseSql("SELECT SUM(t.x) FROM t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->aggregates()[0].output_name, "sum_t.x");
}

TEST(ParserTest, NonAggregateItemMustBeGrouped) {
  auto plan = ParseSql("SELECT t.a, COUNT(*) AS n FROM t GROUP BY t.b");
  EXPECT_FALSE(plan.ok());
}

TEST(ParserTest, GroupByWithoutAggregatesFails) {
  EXPECT_FALSE(ParseSql("SELECT t.a FROM t GROUP BY t.a").ok());
}

TEST(ParserTest, OperatorPrecedence) {
  auto plan = ParseSql("SELECT * FROM t WHERE t.a = 1 OR t.b = 2 AND t.c = 3");
  ASSERT_TRUE(plan.ok());
  // AND binds tighter: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ((*plan)->predicate()->ToString(),
            "((t.a = 1) OR ((t.b = 2) AND (t.c = 3)))");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto plan = ParseSql("SELECT t.a + t.b * 2 AS v FROM t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->project_exprs()[0]->ToString(), "(t.a + (t.b * 2))");
}

TEST(ParserTest, UnaryMinus) {
  auto plan = ParseSql("SELECT * FROM t WHERE t.a > -5");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE((*plan)->predicate()->ToString().find("(0 - 5)"), std::string::npos);
}

TEST(ParserTest, SyntaxErrorsReported) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t JOIN u").ok());       // missing ON
  EXPECT_FALSE(ParseSql("SELECT * FROM t trailing junk").ok());
  EXPECT_FALSE(ParseSql("SELECT *, t.a FROM t").ok());
}

// ---------- end-to-end: SQL == builder-built plans ----------

class SqlIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options data;
    data.total_bytes = 10e9;
    data.sample_rows_per_fact = 1500;
    data.sample_rows_per_dim = 300;
    ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog_).ok());
  }
  Catalog catalog_;
};

TEST_F(SqlIntegrationTest, SqlQ30MatchesTemplateSignature) {
  // The SQL rendering of template Q30 produces the same signature as
  // the builder (so SQL queries share views with template queries).
  auto sql_plan = ParseSql(
      "SELECT item.category_id, SUM(store_sales.net_paid) AS revenue "
      "FROM store_sales JOIN item ON store_sales.item_sk = item.item_sk "
      "WHERE store_sales.item_sk BETWEEN 1000 AND 2000 "
      "GROUP BY item.category_id");
  ASSERT_TRUE(sql_plan.ok()) << sql_plan.status().ToString();
  auto tmpl_plan = BigBenchTemplates::Build("Q30", 1000, 2000);
  ASSERT_TRUE(tmpl_plan.ok());
  auto sql_sig = ComputeSignature(*sql_plan, catalog_);
  auto tmpl_sig = ComputeSignature(*tmpl_plan, catalog_);
  ASSERT_TRUE(sql_sig.ok()) << sql_sig.status().ToString();
  ASSERT_TRUE(tmpl_sig.ok());
  // The SQL variant has no Project between Select and Join, so compare
  // the aggregate-level abstractions that drive matching.
  EXPECT_EQ(sql_sig->relations, tmpl_sig->relations);
  EXPECT_EQ(sql_sig->group_by, tmpl_sig->group_by);
  EXPECT_EQ(sql_sig->agg_specs, tmpl_sig->agg_specs);
  ASSERT_TRUE(sql_sig->ranges.count("store_sales.item_sk"));
}

TEST_F(SqlIntegrationTest, SqlExecutesAndMatchesPushedDownPlan) {
  auto plan = ParseSql(
      "SELECT item.category_id, COUNT(*) AS cnt "
      "FROM store_sales JOIN item ON store_sales.item_sk = item.item_sk "
      "WHERE store_sales.item_sk BETWEEN 50000 AND 250000 "
      "GROUP BY item.category_id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&catalog_);
  auto direct = exec.Execute(*plan);
  auto pushed = exec.Execute(PushDownSelections(*plan, catalog_));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(pushed.ok());
  ASSERT_EQ(direct->rows.size(), pushed->rows.size());
  EXPECT_GT(direct->rows.size(), 0u);
}

TEST_F(SqlIntegrationTest, SqlArithmeticExecutes) {
  auto plan = ParseSql(
      "SELECT store_sales.item_sk, store_sales.net_paid * 2 AS double_paid "
      "FROM store_sales WHERE store_sales.net_paid > 100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&catalog_);
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->schema.num_columns(), 2u);
  for (const Row& row : result->rows) {
    EXPECT_GT(row[1].AsNumeric(), 200.0);
  }
}


TEST(ParserTest, OrderByAndLimit) {
  auto plan = ParseSql(
      "SELECT * FROM t WHERE t.a > 5 ORDER BY t.a DESC, t.b LIMIT 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->kind(), PlanKind::kLimit);
  EXPECT_EQ((*plan)->limit(), 10);
  const PlanPtr sort = (*plan)->child(0);
  ASSERT_EQ(sort->kind(), PlanKind::kSort);
  ASSERT_EQ(sort->sort_keys().size(), 2u);
  EXPECT_EQ(sort->sort_keys()[0].column, "t.a");
  EXPECT_FALSE(sort->sort_keys()[0].ascending);
  EXPECT_EQ(sort->sort_keys()[1].column, "t.b");
  EXPECT_TRUE(sort->sort_keys()[1].ascending);
  EXPECT_EQ(sort->child(0)->kind(), PlanKind::kSelect);
}

TEST(ParserTest, OrderByAfterGroupBy) {
  auto plan = ParseSql(
      "SELECT t.g, COUNT(*) AS n FROM t GROUP BY t.g ORDER BY n DESC LIMIT 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->kind(), PlanKind::kLimit);
  EXPECT_EQ((*plan)->child(0)->kind(), PlanKind::kSort);
  EXPECT_EQ((*plan)->child(0)->child(0)->kind(), PlanKind::kAggregate);
}

TEST(ParserTest, LimitRequiresNumber) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t ORDER BY").ok());
}

TEST_F(SqlIntegrationTest, TopCategoriesByRevenue) {
  auto plan = ParseSql(
      "SELECT item.category_id, SUM(store_sales.net_paid) AS revenue "
      "FROM store_sales JOIN item ON store_sales.item_sk = item.item_sk "
      "GROUP BY item.category_id ORDER BY revenue DESC LIMIT 5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Executor exec(&catalog_);
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_LE(result->rows.size(), 5u);
  ASSERT_GE(result->rows.size(), 2u);
  // Rows are in descending revenue order.
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(result->rows[i - 1][1].AsNumeric(), result->rows[i][1].AsNumeric());
  }
}

}  // namespace
}  // namespace deepsea
