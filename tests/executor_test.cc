#include "exec/executor.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Table>(
        "fact", Schema({{"fact.k", DataType::kInt64},
                        {"fact.v", DataType::kDouble}}));
    for (int i = 0; i < 10; ++i) {
      fact->AddRow({Value(static_cast<int64_t>(i)), Value(i * 1.5)});
    }
    catalog_.Put(fact);

    auto dim = std::make_shared<Table>(
        "dim", Schema({{"dim.k", DataType::kInt64},
                       {"dim.g", DataType::kInt64}}));
    for (int i = 0; i < 10; i += 2) {  // only even keys
      dim->AddRow({Value(static_cast<int64_t>(i)),
                   Value(static_cast<int64_t>(i % 4))});
    }
    catalog_.Put(dim);
  }

  ExecResult Run(const PlanPtr& plan) {
    Executor exec(&catalog_);
    auto r = exec.Execute(plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ExecResult{};
  }

  Catalog catalog_;
};

TEST_F(ExecutorTest, ScanReturnsAllRows) {
  EXPECT_EQ(Run(Scan("fact")).rows.size(), 10u);
}

TEST_F(ExecutorTest, ScanMissingTableFails) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Execute(Scan("zzz")).ok());
}

TEST_F(ExecutorTest, SelectFilters) {
  const auto r = Run(Select(Scan("fact"), RangePredicate("fact.k", 3, 6)));
  EXPECT_EQ(r.rows.size(), 4u);  // 3,4,5,6
}

TEST_F(ExecutorTest, ProjectComputes) {
  const auto r = Run(Project(Scan("fact"),
                             {Col("fact.k"), Arith(ArithOp::kMul, Col("fact.v"), LitD(2))},
                             {"fact.k", "v2"}));
  ASSERT_EQ(r.rows.size(), 10u);
  EXPECT_EQ(r.schema.num_columns(), 2u);
  EXPECT_EQ(r.rows[2][1], Value(6.0));  // 2*1.5*2
}

TEST_F(ExecutorTest, HashJoinMatchesOnlyEqualKeys) {
  const auto r = Run(Join(Scan("fact"), Scan("dim"),
                          Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k"))));
  EXPECT_EQ(r.rows.size(), 5u);  // even keys 0,2,4,6,8
  EXPECT_EQ(r.schema.num_columns(), 4u);
}

TEST_F(ExecutorTest, JoinWithResidualCondition) {
  const auto r = Run(Join(Scan("fact"), Scan("dim"),
                          And(Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k")),
                              Cmp(CompareOp::kGe, Col("fact.v"), LitD(3.0)))));
  // fact.v >= 3 means k >= 2; joined even keys 2,4,6,8.
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecutorTest, JoinWithoutEqualityFails) {
  Executor exec(&catalog_);
  auto r = exec.Execute(Join(Scan("fact"), Scan("dim"),
                             Cmp(CompareOp::kLt, Col("fact.k"), Col("dim.k"))));
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, GroupByAggregate) {
  auto join = Join(Scan("fact"), Scan("dim"),
                   Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k")));
  const auto r = Run(Aggregate(join, {"dim.g"},
                               {{AggFunc::kCount, "", "cnt"},
                                {AggFunc::kSum, "fact.v", "sv"}}));
  // dim.g takes values 0 (k=0,4,8) and 2 (k=2,6).
  ASSERT_EQ(r.rows.size(), 2u);
  // Rows sorted by group key.
  EXPECT_EQ(r.rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{3}));
  EXPECT_EQ(r.rows[0][2], Value((0 + 4 + 8) * 1.5));
  EXPECT_EQ(r.rows[1][0], Value(int64_t{2}));
  EXPECT_EQ(r.rows[1][1], Value(int64_t{2}));
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  const auto r = Run(Aggregate(Select(Scan("fact"), RangePredicate("fact.k", 100, 200)),
                               {}, {{AggFunc::kCount, "", "n"},
                                    {AggFunc::kSum, "fact.v", "s"}}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{0}));
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, MinMaxAvg) {
  const auto r = Run(Aggregate(Scan("fact"), {},
                               {{AggFunc::kMin, "fact.v", "mn"},
                                {AggFunc::kMax, "fact.v", "mx"},
                                {AggFunc::kAvg, "fact.v", "av"}}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(0.0));
  EXPECT_EQ(r.rows[0][1], Value(13.5));
  EXPECT_EQ(r.rows[0][2], Value(6.75));
}

TEST_F(ExecutorTest, CaptureSubplan) {
  auto join = Join(Scan("fact"), Scan("dim"),
                   Cmp(CompareOp::kEq, Col("fact.k"), Col("dim.k")));
  auto root = Select(join, RangePredicate("fact.k", 0, 4));
  Executor exec(&catalog_);
  exec.CaptureSubplan(join.get());
  auto r = exec.Execute(root);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(exec.captured().size(), 1u);
  EXPECT_EQ(exec.captured().at(join.get()).rows.size(), 5u);  // full join
  EXPECT_EQ(r->rows.size(), 3u);  // filtered (0,2,4)
}

TEST_F(ExecutorTest, ViewRefReadsWholeTable) {
  const auto r = Run(ViewRef("fact", "", {}));
  EXPECT_EQ(r.rows.size(), 10u);
}

TEST_F(ExecutorTest, ViewRefFiltersByFragments) {
  const auto r = Run(ViewRef("fact", "fact.k",
                             {Interval(0, 2), Interval::OpenClosed(6, 9)}));
  // Keys 0,1,2 and 7,8,9.
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(ExecutorTest, ViewRefOverlappingFragmentsNoDuplicates) {
  const auto r = Run(ViewRef("fact", "fact.k", {Interval(0, 5), Interval(3, 7)}));
  EXPECT_EQ(r.rows.size(), 8u);  // 0..7 once each
}

TEST_F(ExecutorTest, PartitionRowsSplitsByKey) {
  ExecResult input;
  input.schema = Schema({{"t.k", DataType::kInt64}});
  for (int i = 0; i < 10; ++i) input.rows.push_back({Value(static_cast<int64_t>(i))});
  auto buckets = PartitionRows(input, "t.k",
                               {Interval::ClosedOpen(0, 5), Interval(5, 9)});
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ((*buckets)[0].size(), 5u);
  EXPECT_EQ((*buckets)[1].size(), 5u);
}

TEST_F(ExecutorTest, PartitionRowsOverlappingDuplication) {
  ExecResult input;
  input.schema = Schema({{"t.k", DataType::kInt64}});
  for (int i = 0; i < 10; ++i) input.rows.push_back({Value(static_cast<int64_t>(i))});
  auto buckets = PartitionRows(input, "t.k", {Interval(0, 9), Interval(3, 5)});
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ((*buckets)[0].size(), 10u);
  EXPECT_EQ((*buckets)[1].size(), 3u);  // rows 3,4,5 duplicated into both
}

TEST_F(ExecutorTest, PartitionRowsMissingAttrFails) {
  ExecResult input;
  input.schema = Schema({{"t.k", DataType::kInt64}});
  EXPECT_FALSE(PartitionRows(input, "t.zzz", {Interval(0, 1)}).ok());
}


TEST_F(ExecutorTest, SortAscendingAndDescending) {
  const auto asc = Run(Sort(Scan("fact"), {{"fact.v", true}}));
  ASSERT_EQ(asc.rows.size(), 10u);
  for (size_t i = 1; i < asc.rows.size(); ++i) {
    EXPECT_LE(asc.rows[i - 1][1].AsNumeric(), asc.rows[i][1].AsNumeric());
  }
  const auto desc = Run(Sort(Scan("fact"), {{"fact.v", false}}));
  for (size_t i = 1; i < desc.rows.size(); ++i) {
    EXPECT_GE(desc.rows[i - 1][1].AsNumeric(), desc.rows[i][1].AsNumeric());
  }
}

TEST_F(ExecutorTest, SortUnknownColumnFails) {
  Executor exec(&catalog_);
  EXPECT_FALSE(exec.Execute(Sort(Scan("fact"), {{"fact.zzz", true}})).ok());
}

TEST_F(ExecutorTest, LimitTruncates) {
  EXPECT_EQ(Run(Limit(Scan("fact"), 3)).rows.size(), 3u);
  EXPECT_EQ(Run(Limit(Scan("fact"), 100)).rows.size(), 10u);
  EXPECT_EQ(Run(Limit(Scan("fact"), 0)).rows.size(), 0u);
}

TEST_F(ExecutorTest, TopKPattern) {
  const auto r = Run(Limit(Sort(Scan("fact"), {{"fact.k", false}}), 2));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{9}));
  EXPECT_EQ(r.rows[1][0], Value(int64_t{8}));
}

}  // namespace
}  // namespace deepsea
