#include "core/partition_match.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace deepsea {
namespace {

TEST(PartitionMatchTest, ExactSingleFragment) {
  auto cover = PartitionMatchIntervals({Interval(0, 10)}, Interval(0, 10));
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 1u);
}

TEST(PartitionMatchTest, DisjointPartitionCover) {
  const std::vector<Interval> frags = {Interval::ClosedOpen(0, 10),
                                       Interval::ClosedOpen(10, 20),
                                       Interval(20, 30)};
  auto cover = PartitionMatchIntervals(frags, Interval(5, 25));
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 3u);
}

TEST(PartitionMatchTest, SubrangeUsesOnlyNeededFragments) {
  const std::vector<Interval> frags = {Interval::ClosedOpen(0, 10),
                                       Interval::ClosedOpen(10, 20),
                                       Interval(20, 30)};
  auto cover = PartitionMatchIntervals(frags, Interval(12, 18));
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], Interval::ClosedOpen(10, 20));
}

TEST(PartitionMatchTest, GreedyPrefersLargestLowerBound) {
  // Overlapping fragments: big [0,30] and tight [8,30]. For query
  // [10,25] greedy must pick the tighter one.
  const std::vector<Interval> frags = {Interval(0, 30), Interval(8, 30)};
  auto cover = PartitionMatchIntervals(frags, Interval(10, 25));
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], Interval(8, 30));
}

TEST(PartitionMatchTest, OverlappingChain) {
  // The paper's overlapping scenario: old big fragment (b, u] plus a
  // small new (b, b'] — a query past b' must use the big one.
  const std::vector<Interval> frags = {
      Interval::ClosedOpen(0, 10),   // [l, a)
      Interval(10, 20),              // [a, b]
      Interval::OpenClosed(20, 40),  // (b, u]  (big, old)
      Interval::OpenClosed(20, 25),  // (b, b'] (small, new)
  };
  // Query inside (20, 25]: small fragment suffices.
  auto small_cover = PartitionMatchIntervals(frags, Interval(21, 24));
  ASSERT_TRUE(small_cover.ok());
  ASSERT_EQ(small_cover->size(), 1u);
  EXPECT_EQ((*small_cover)[0], Interval::OpenClosed(20, 25));
  // Query reaching past 25 needs the big fragment.
  auto big_cover = PartitionMatchIntervals(frags, Interval(21, 35));
  ASSERT_TRUE(big_cover.ok());
  ASSERT_EQ(big_cover->size(), 1u);
  EXPECT_EQ((*big_cover)[0], Interval::OpenClosed(20, 40));
}

TEST(PartitionMatchTest, GapFails) {
  const std::vector<Interval> frags = {Interval(0, 10), Interval(20, 30)};
  auto cover = PartitionMatch(frags, Interval(5, 25));
  EXPECT_FALSE(cover.ok());
  EXPECT_EQ(cover.status().code(), StatusCode::kNotFound);
}

TEST(PartitionMatchTest, PointGapAtOpenBoundsFails) {
  const std::vector<Interval> frags = {Interval::ClosedOpen(0, 10),
                                       Interval::OpenClosed(10, 20)};
  // The point 10 is uncovered.
  EXPECT_FALSE(PartitionMatch(frags, Interval(5, 15)).ok());
  // A query that avoids the missing point succeeds.
  EXPECT_TRUE(PartitionMatch(frags, Interval(5, 9)).ok());
}

TEST(PartitionMatchTest, EmptyRangeEmptyCover) {
  auto cover = PartitionMatch({Interval(0, 10)}, Interval(5, 3));
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(cover->empty());
}

TEST(PartitionMatchTest, NoFragmentsFails) {
  EXPECT_FALSE(PartitionMatch({}, Interval(0, 1)).ok());
}

TEST(PartitionMatchTest, CoverIsLeftToRight) {
  const std::vector<Interval> frags = {Interval(20, 30), Interval::ClosedOpen(0, 10),
                                       Interval::ClosedOpen(10, 20)};
  auto cover = PartitionMatchIntervals(frags, Interval(0, 30));
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 3u);
  EXPECT_LT((*cover)[0].lo, (*cover)[1].lo);
  EXPECT_LT((*cover)[1].lo, (*cover)[2].lo);
}

// Property sweep: random overlapping fragmentations that cover the
// domain must always yield a valid cover for random query ranges.
class PartitionMatchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionMatchPropertyTest, CoverAlwaysFoundAndValid) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 100; ++iter) {
    // Build a covering base partition, then add random overlap noise.
    std::vector<Interval> frags;
    double pos = 0.0;
    while (pos < 100.0) {
      const double next = std::min(100.0, pos + rng.Uniform(5, 30));
      frags.push_back(next >= 100.0 ? Interval(pos, 100.0)
                                    : Interval::ClosedOpen(pos, next));
      pos = next;
    }
    const int extra = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < extra; ++i) {
      const double lo = rng.Uniform(0, 80);
      frags.push_back(Interval(lo, lo + rng.Uniform(1, 20)));
    }
    const double qlo = rng.Uniform(0, 90);
    const Interval query(qlo, std::min(100.0, qlo + rng.Uniform(0.5, 50)));
    auto cover = PartitionMatchIntervals(frags, query);
    ASSERT_TRUE(cover.ok()) << "query " << query.ToString();
    Fragmentation cf(*cover);
    EXPECT_TRUE(cf.Covers(query)) << "cover misses part of " << query.ToString();
    // No chosen fragment is redundant at its choice point: covers are
    // small (at most #fragments).
    EXPECT_LE(cover->size(), frags.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionMatchPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace deepsea
