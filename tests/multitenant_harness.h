#ifndef DEEPSEA_TESTS_MULTITENANT_HARNESS_H_
#define DEEPSEA_TESTS_MULTITENANT_HARNESS_H_

// Deterministic concurrency harness for multi-tenant engines sharing
// one PoolManager. The pieces:
//
//  * Turnstile — a schedule-controlled interleaver. Tenant threads call
//    Await(me) before each query and Advance() after it, so the global
//    commit order equals a chosen schedule exactly, independent of OS
//    scheduling. With it a threaded run can be compared bit-for-bit
//    against a single-threaded replay of the same commit order.
//  * SdssTenantWorkload / BuildPlans — per-tenant SDSS-patterned
//    workloads (the golden-trace construction, parameterized by seed so
//    tenants get distinct but reproducible query streams).
//  * ShuffledSchedule — a seeded permutation of the round-robin commit
//    order.
//  * PoolFingerprint — a canonical text rendering of everything the
//    pool adapts (views, statistics, fragments, FS files, clock) with
//    %.17g doubles. Two runs with the same commit order must produce
//    identical fingerprints; this is the "pool state is a function of
//    commit order alone" assertion.
//  * RunScheduled — drives N tenants over a fresh SharedPool in a given
//    commit order, either single-threaded (replay) or with one
//    std::thread per tenant gated through a Turnstile.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/engine.h"
#include "core/shared_pool.h"
#include "workload/bigbench.h"
#include "workload/sdss.h"

namespace deepsea {
namespace mt {

/// Schedule-controlled interleaver: Await(who) blocks the caller until
/// the schedule's current step belongs to `who`; Advance() moves to the
/// next step and wakes everyone. Steps are tenant indices; tenant t
/// must appear in the schedule exactly as often as it has queries.
class Turnstile {
 public:
  explicit Turnstile(std::vector<int> schedule)
      : schedule_(std::move(schedule)) {}

  /// Returns false when the schedule is exhausted (caller should stop).
  bool Await(int who) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return step_ >= schedule_.size() || schedule_[step_] == who;
    });
    return step_ < schedule_.size();
  }

  void Advance() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++step_;
    }
    cv_.notify_all();
  }

 private:
  std::vector<int> schedule_;
  size_t step_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

struct TenantQuery {
  std::string template_name;
  Interval range;
};

/// The golden-trace workload shape (Section 10.1: SDSS selection ranges
/// mapped onto item_sk over randomly chosen join templates), with the
/// seed exposed so each tenant draws a distinct reproducible stream.
inline std::vector<TenantQuery> SdssTenantWorkload(int n, uint64_t seed) {
  SdssTraceModel sdss(SdssTraceModel::Config{}, seed);
  const auto trace = sdss.GenerateTrace(n);
  const Interval ra(-20.0, 400.0);
  const Interval item_sk(0.0, 400000.0);
  Rng rng(seed + 1);
  const auto names = BigBenchTemplates::Names();
  std::vector<TenantQuery> out;
  out.reserve(trace.size());
  for (const Interval& r : trace) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    out.push_back({name, SdssTraceModel::MapRange(r, ra, item_sk)});
  }
  return out;
}

/// Pre-builds the plan trees so worker threads never run the template
/// builder concurrently (plans reference base tables by name only, so
/// one plan set can be replayed against any catalog with those tables).
inline std::vector<PlanPtr> BuildPlans(const std::vector<TenantQuery>& queries) {
  std::vector<PlanPtr> out;
  out.reserve(queries.size());
  for (const TenantQuery& q : queries) {
    auto plan = BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
    EXPECT_TRUE(plan.ok()) << q.template_name;
    out.push_back(*plan);
  }
  return out;
}

/// A seeded fully random commit order: each step picks uniformly among
/// the tenants that still have queries left. Unlike ShuffledSchedule
/// (a permuted round robin, which keeps tenants roughly in lockstep)
/// this produces bursts — one tenant can commit many times while
/// another's plan stays in flight — which is exactly the shape that
/// stresses read-set validation and the bounded epoch table.
inline std::vector<int> RandomSchedule(
    const std::vector<int>& queries_per_tenant, uint64_t seed) {
  std::vector<int> remaining = queries_per_tenant;
  std::vector<int> alive;
  for (size_t t = 0; t < remaining.size(); ++t) {
    if (remaining[t] > 0) alive.push_back(static_cast<int>(t));
  }
  Rng rng(seed);
  std::vector<int> schedule;
  while (!alive.empty()) {
    const size_t i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
    const int who = alive[i];
    schedule.push_back(who);
    if (--remaining[static_cast<size_t>(who)] == 0) {
      alive.erase(alive.begin() + static_cast<long>(i));
    }
  }
  return schedule;
}

/// A seeded permutation of the round-robin commit order: tenant t
/// appears `queries_per_tenant[t]` times. seed selects the permutation;
/// the same seed always yields the same schedule.
inline std::vector<int> ShuffledSchedule(
    const std::vector<int>& queries_per_tenant, uint64_t seed) {
  std::vector<int> schedule;
  std::vector<int> remaining = queries_per_tenant;
  bool any = true;
  while (any) {
    any = false;
    for (size_t t = 0; t < remaining.size(); ++t) {
      if (remaining[t] <= 0) continue;
      schedule.push_back(static_cast<int>(t));
      --remaining[t];
      any = true;
    }
  }
  Rng rng(seed);
  for (size_t i = schedule.size(); i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(schedule[i - 1], schedule[j]);
  }
  return schedule;
}

/// Canonical rendering of the pool's full adaptive state. Doubles use
/// %.17g (bit-identical round-trip); view order is track order, which
/// is itself a function of the commit order. Only call on a quiesced
/// pool (all tenant threads joined).
inline std::string PoolFingerprint(const PoolManager& pool) {
  std::string out = StrFormat(
      "clock=%lld pool_bytes=%.17g fs_bytes=%.17g\n",
      static_cast<long long>(pool.clock()), pool.PoolBytes(),
      pool.fs().TotalBytes("pool/"));
  for (const ViewInfo* v : pool.views().AllViews()) {
    out += StrFormat("view %s whole=%d S=%.17g C=%.17g events=%lld\n",
                     v->id.c_str(), v->whole_materialized ? 1 : 0,
                     v->stats.size_bytes, v->stats.creation_cost,
                     static_cast<long long>(v->stats.events().size()));
    for (const auto& [attr, part] : v->partitions) {
      for (const FragmentStats& f : part.fragments) {
        out += StrFormat(
            "  frag %s [%.17g,%.17g] mat=%d S=%.17g hits=%lld\n", attr.c_str(),
            f.interval.lo, f.interval.hi, f.materialized ? 1 : 0, f.size_bytes,
            static_cast<long long>(f.hits().size()));
      }
    }
  }
  for (const std::string& path : pool.fs().List("pool/")) {
    out += "file " + path + "\n";
  }
  return out;
}

/// One QueryReport as a comparable line: the golden-trace field set
/// prefixed with the tenant id, all doubles %.17g.
inline std::string FormatTenantReport(const QueryReport& r) {
  std::string created;
  for (size_t i = 0; i < r.created_views.size(); ++i) {
    if (i > 0) created += ";";
    created += r.created_views[i];
  }
  return StrFormat(
      "%s,%lld,%.17g,%.17g,%.17g,%.17g,%s,%d,%s,%d,%d,%d,%.17g",
      r.tenant_id.c_str(), static_cast<long long>(r.query_index),
      r.base_seconds, r.best_seconds, r.materialize_seconds, r.total_seconds,
      r.used_view.c_str(), r.fragments_read, created.c_str(),
      r.created_fragments, r.evicted_fragments, r.merged_fragments,
      r.pool_bytes_after);
}

struct ScheduledRunResult {
  std::vector<std::vector<std::string>> reports;  ///< [tenant][i-th query]
  std::string fingerprint;
};

/// Runs tenant t's `plans[t]` over a fresh SharedPool in the exact
/// global commit order given by `schedule`. threaded=false replays the
/// schedule on the calling thread; threaded=true runs one std::thread
/// per tenant gated through a Turnstile — same commit order, real
/// concurrency. `catalog` should be fresh per run: engines register
/// view tables in it, and two runs with different schedules would
/// otherwise see each other's registrations. `configure`, when given,
/// runs against the quiesced pool before any engine is built — the
/// fault-injection tests use it to install a FaultPolicy (which must
/// outlive the call). `attach`, when given, runs once per engine after
/// construction and before any query — the metrics tests use it to
/// attach observers (tenant index is the second argument; observers
/// must satisfy the engine_observer.h concurrency contract themselves
/// when the run is threaded).
inline ScheduledRunResult RunScheduled(
    Catalog* catalog, const EngineOptions& options,
    const std::vector<std::string>& tenants,
    const std::vector<std::vector<PlanPtr>>& plans,
    const std::vector<int>& schedule, bool threaded,
    const std::function<void(PoolManager*)>& configure = nullptr,
    const std::function<void(DeepSeaEngine*, int)>& attach = nullptr) {
  const int n = static_cast<int>(plans.size());
  SharedPool shared(catalog, options);
  if (configure) configure(shared.pool());
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  engines.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    engines.push_back(
        std::make_unique<DeepSeaEngine>(catalog, &shared, tenants[t]));
    if (attach) attach(engines.back().get(), t);
  }
  ScheduledRunResult out;
  out.reports.resize(static_cast<size_t>(n));
  if (!threaded) {
    std::vector<size_t> next(static_cast<size_t>(n), 0);
    for (int who : schedule) {
      const size_t i = next[static_cast<size_t>(who)]++;
      auto report = engines[static_cast<size_t>(who)]->ProcessQuery(
          plans[static_cast<size_t>(who)][i]);
      if (!report.ok()) {
        ADD_FAILURE() << "tenant " << tenants[static_cast<size_t>(who)]
                      << " query " << i << ": " << report.status().ToString();
        continue;
      }
      out.reports[static_cast<size_t>(who)].push_back(
          FormatTenantReport(*report));
    }
  } else {
    Turnstile turnstile(schedule);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        for (const PlanPtr& plan : plans[static_cast<size_t>(t)]) {
          if (!turnstile.Await(t)) break;
          auto report = engines[static_cast<size_t>(t)]->ProcessQuery(plan);
          if (report.ok()) {
            out.reports[static_cast<size_t>(t)].push_back(
                FormatTenantReport(*report));
          }
          turnstile.Advance();
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  out.fingerprint = PoolFingerprint(*shared.pool());
  return out;
}

}  // namespace mt
}  // namespace deepsea

#endif  // DEEPSEA_TESTS_MULTITENANT_HARNESS_H_
