#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/executor.h"
#include "plan/pushdown.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"
#include "workload/sdss.h"

namespace deepsea {
namespace {

// Canonical multiset rendering of a result for order-insensitive
// comparison.
std::multiset<std::string> Canonical(const ExecResult& r) {
  std::multiset<std::string> out;
  for (const Row& row : r.rows) {
    std::string line;
    for (const Value& v : row) line += v.ToString() + "|";
    out.insert(line);
  }
  return out;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options opts;
    opts.total_bytes = 50e9;
    opts.sample_rows_per_fact = 2000;
    opts.sample_rows_per_dim = 400;
    opts.seed = 21;
    ASSERT_TRUE(BigBenchDataset::Generate(opts, &catalog_).ok());
  }

  // Ground truth by executing the pushed-down plan directly.
  ExecResult GroundTruth(const PlanPtr& plan) {
    Executor exec(&catalog_);
    auto r = exec.Execute(PushDownSelections(plan, catalog_));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : ExecResult{};
  }

  Catalog catalog_;
};

TEST_F(IntegrationTest, PhysicalResultsMatchGroundTruthAcrossWorkload) {
  EngineOptions opts;
  opts.physical_execution = true;
  opts.enforce_block_lower_bound = false;
  DeepSeaEngine engine(&catalog_, opts);

  RangeGenerator gen(Interval(0, 400000), Selectivity::kMedium, Skew::kHeavy, 5);
  int answered_from_view = 0;
  for (int i = 0; i < 15; ++i) {
    const Interval range = gen.Next();
    auto plan = BigBenchTemplates::Build("Q30", range.lo, range.hi);
    ASSERT_TRUE(plan.ok());
    const ExecResult truth = GroundTruth(*plan);
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->physically_executed);
    EXPECT_EQ(Canonical(report->physical), Canonical(truth))
        << "result mismatch at query " << i
        << (report->used_view.empty() ? " (base plan)"
                                      : " (view " + report->used_view + ")");
    if (!report->used_view.empty()) ++answered_from_view;
  }
  // The point of the test is exercising the view path physically.
  EXPECT_GT(answered_from_view, 3);
}

TEST_F(IntegrationTest, PhysicalCorrectnessAcrossTemplates) {
  EngineOptions opts;
  opts.physical_execution = true;
  opts.enforce_block_lower_bound = false;
  DeepSeaEngine engine(&catalog_, opts);
  // Warm the shared store_sales x item view with Q30, then check Q1 and
  // Q20 which reuse it.
  for (int i = 0; i < 5; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  for (const char* name : {"Q1", "Q20", "Q30"}) {
    auto plan = BigBenchTemplates::Build(name, 120000, 160000);
    ASSERT_TRUE(plan.ok());
    const ExecResult truth = GroundTruth(*plan);
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(Canonical(report->physical), Canonical(truth)) << name;
  }
}

TEST_F(IntegrationTest, OverlappingFragmentsStayCorrect) {
  EngineOptions opts;
  opts.physical_execution = true;
  opts.overlapping_fragments = true;
  opts.enforce_block_lower_bound = false;
  DeepSeaEngine engine(&catalog_, opts);
  // Regime 1 then regime 2 to force overlapping refinements.
  for (int i = 0; i < 6; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 40000, 240000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  for (int i = 0; i < 6; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 60000, 110000);
    ASSERT_TRUE(plan.ok());
    const ExecResult truth = GroundTruth(*plan);
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(Canonical(report->physical), Canonical(truth)) << "query " << i;
  }
}

TEST_F(IntegrationTest, EvictionUnderTinyPoolStaysCorrect) {
  EngineOptions opts;
  opts.physical_execution = true;
  opts.pool_limit_bytes = 3e9;
  opts.enforce_block_lower_bound = false;
  DeepSeaEngine engine(&catalog_, opts);
  RangeGenerator gen(Interval(0, 400000), Selectivity::kSmall, Skew::kLight, 77);
  for (int i = 0; i < 12; ++i) {
    const Interval range = gen.Next();
    auto plan = BigBenchTemplates::Build(i % 2 == 0 ? "Q30" : "Q5", range.lo,
                                         range.hi);
    ASSERT_TRUE(plan.ok());
    const ExecResult truth = GroundTruth(*plan);
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(Canonical(report->physical), Canonical(truth)) << "query " << i;
    EXPECT_LE(engine.PoolBytes(), opts.pool_limit_bytes * 1.0001);
  }
}

TEST_F(IntegrationTest, SdssDrivenWorkloadEndToEnd) {
  // Mini version of the Section 10.1 experiment wiring: SDSS ranges
  // mapped onto item_sk, random templates, DS engine with physical
  // checking on a subset of queries.
  SdssTraceModel sdss(SdssTraceModel::Config{}, 1);
  const auto trace = sdss.GenerateTrace(30);
  const Interval ra_domain(-20, 400);
  const Interval sk_domain(0, 400000);

  EngineOptions opts;
  opts.physical_execution = true;
  opts.enforce_block_lower_bound = false;
  DeepSeaEngine engine(&catalog_, opts);
  Rng rng(3);
  const auto names = BigBenchTemplates::Names();
  for (const Interval& ra : trace) {
    const Interval range = SdssTraceModel::MapRange(ra, ra_domain, sk_domain);
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    auto plan = BigBenchTemplates::Build(name, range.lo, range.hi);
    ASSERT_TRUE(plan.ok());
    const ExecResult truth = GroundTruth(*plan);
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(Canonical(report->physical), Canonical(truth)) << name;
  }
  EXPECT_GT(engine.totals().queries_answered_from_views, 0);
}

}  // namespace
}  // namespace deepsea
