#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/math_util.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace deepsea {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnMacro(int x) {
  DEEPSEA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnMacro(1).ok());
  EXPECT_EQ(UseReturnMacro(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  DEEPSEA_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::NotFound("x")).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(Mean(xs), 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(SampleVariance(xs)), 2.0, 0.1);
}

TEST(RngTest, ZipfRankOneMostFrequent) {
  Rng rng(13);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[static_cast<size_t>(rng.Zipf(10, 1.2))]++;
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(MathTest, MeanAndVariance) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(SampleVariance({1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(PopulationVariance({1, 2, 3}), 2.0 / 3.0);
  EXPECT_EQ(SampleVariance({5}), 0.0);
}

TEST(MathTest, WeightedMean) {
  EXPECT_DOUBLE_EQ(WeightedMean({1, 10}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(WeightedMean({2, 4}, {1, 1}), 3.0);
  EXPECT_EQ(WeightedMean({1, 2}, {0, 0}), 0.0);
}

TEST(MathTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  // Parameterized form.
  EXPECT_NEAR(NormalCdf(10.0, 10.0, 5.0), 0.5, 1e-12);
  // Degenerate sigma: step function.
  EXPECT_EQ(NormalCdf(9.9, 10.0, 0.0), 0.0);
  EXPECT_EQ(NormalCdf(10.0, 10.0, 0.0), 1.0);
}

TEST(MathTest, FitNormalMleRecoversCenter) {
  // Weighted observations centred at 50.
  std::vector<double> xs = {40, 45, 50, 55, 60};
  std::vector<double> ws = {1, 4, 10, 4, 1};
  const NormalFit fit = FitNormalMle(xs, ws);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.mean, 50.0, 1e-9);
  EXPECT_GT(fit.stddev, 0.0);
  EXPECT_DOUBLE_EQ(fit.total_weight, 20.0);
}

TEST(MathTest, FitNormalMleEmptyInvalid) {
  const NormalFit fit = FitNormalMle({1, 2}, {0, 0});
  EXPECT_FALSE(fit.valid);
}

TEST(MathTest, FitLinearExact) {
  const LinearFit fit = FitLinear({1, 2, 3, 4}, {3, 5, 7, 9});
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.Predict(10), 21.0, 1e-9);
}

TEST(MathTest, FitLinearDegenerate) {
  EXPECT_FALSE(FitLinear({1}, {2}).valid);
  EXPECT_FALSE(FitLinear({3, 3, 3}, {1, 2, 3}).valid);  // zero x-variance
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-5, 0, 10), 0);
  EXPECT_EQ(Clamp(15, 0, 10), 10);
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StrUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024 * 1024), "1.50 GB");
}

TEST(StrUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(12.34), "12.3 s");
  EXPECT_EQ(HumanSeconds(7200), "2h 00m");
}

TEST(BackoffTest, DefaultsReturnBaseExactly) {
  // multiplier 1, no cap, no jitter: the historical fixed backoff.
  BackoffConfig config;
  config.base_seconds = 2.5;
  DeterministicBackoff backoff(config, /*seed=*/42);
  for (int retry = 0; retry < 10; ++retry) {
    EXPECT_EQ(backoff.DelaySeconds(retry), 2.5) << retry;
  }
}

TEST(BackoffTest, GrowsMonotonicallyUpToCap) {
  BackoffConfig config;
  config.base_seconds = 1.0;
  config.multiplier = 2.0;
  config.cap_seconds = 10.0;
  DeterministicBackoff backoff(config, /*seed=*/7);
  EXPECT_DOUBLE_EQ(backoff.DelaySeconds(0), 1.0);
  EXPECT_DOUBLE_EQ(backoff.DelaySeconds(1), 2.0);
  EXPECT_DOUBLE_EQ(backoff.DelaySeconds(2), 4.0);
  EXPECT_DOUBLE_EQ(backoff.DelaySeconds(3), 8.0);
  // Capped from retry 4 on, and never decreasing past the cap.
  EXPECT_DOUBLE_EQ(backoff.DelaySeconds(4), 10.0);
  double prev = 0.0;
  for (int retry = 0; retry < 60; ++retry) {
    const double d = backoff.DelaySeconds(retry);
    EXPECT_GE(d, prev) << retry;
    EXPECT_LE(d, 10.0) << retry;
    prev = d;
  }
}

TEST(BackoffTest, JitterStaysWithinFractionAndUnderCapTimesBand) {
  BackoffConfig config;
  config.base_seconds = 1.0;
  config.multiplier = 2.0;
  config.cap_seconds = 64.0;
  config.jitter_fraction = 0.2;
  DeterministicBackoff backoff(config, /*seed=*/99);
  bool any_jitter = false;
  for (int retry = 0; retry < 12; ++retry) {
    const double nominal = std::min(64.0, std::pow(2.0, retry));
    const double d = backoff.DelaySeconds(retry);
    EXPECT_GE(d, nominal * 0.8) << retry;
    EXPECT_LE(d, nominal * 1.2) << retry;
    if (d != nominal) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter);
}

TEST(BackoffTest, PureAndReplayable) {
  BackoffConfig config;
  config.base_seconds = 0.5;
  config.multiplier = 1.7;
  config.cap_seconds = 30.0;
  config.jitter_fraction = 0.3;
  const DeterministicBackoff a(config, /*seed=*/1234);
  const DeterministicBackoff b(config, /*seed=*/1234);
  const DeterministicBackoff c(config, /*seed=*/1235);
  bool any_seed_difference = false;
  for (int retry = 0; retry < 16; ++retry) {
    // Pure in (config, seed, retry): repeated and out-of-order calls
    // reproduce the schedule bit for bit.
    EXPECT_EQ(a.DelaySeconds(retry), b.DelaySeconds(retry)) << retry;
    EXPECT_EQ(a.DelaySeconds(retry), a.DelaySeconds(retry)) << retry;
    if (a.DelaySeconds(retry) != c.DelaySeconds(retry)) {
      any_seed_difference = true;
    }
  }
  // Different seeds give different jitter schedules.
  EXPECT_TRUE(any_seed_difference);
}

}  // namespace
}  // namespace deepsea
