// MetricsObserver coverage: histogram bucket boundaries, counter/gauge
// agreement with QueryReport/EngineTotals and the pool's accounting,
// byte-stable Prometheus exposition (golden file), the strict
// exposition-format validator, MulticastObserver fan-out, and the
// multi-tenant contract — a turnstile-pinned threaded run through one
// shared MetricsObserver must equal per-tenant sequential runs exactly,
// and a free-running run (TSan's hunting ground) must stay consistent.
//
// Regenerate the exposition golden (only when the workload or the
// exporter intentionally changes):
//   DEEPSEA_REGEN_GOLDEN=1 ./metrics_test

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/shared_pool.h"
#include "exp/metrics.h"
#include "multitenant_harness.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

#ifndef DEEPSEA_GOLDEN_DIR
#define DEEPSEA_GOLDEN_DIR "tests/golden"
#endif
#ifndef DEEPSEA_OBSERVABILITY_MD
#define DEEPSEA_OBSERVABILITY_MD "OBSERVABILITY.md"
#endif

EngineOptions BaseOptions() {
  EngineOptions o;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

BigBenchDataset::Options DataOptions() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  return o;
}

// ---------------------------------------------------------------------------
// Bucket boundaries

TEST(MetricsBucketsTest, BoundariesAreInclusiveUpperBounds) {
  using M = MetricsObserver;
  // Prometheus `le` semantics: a value equal to the bound belongs to
  // that bucket; the next representable value above it does not.
  for (int i = 0; i < M::kFiniteBuckets; ++i) {
    const double bound = M::kBucketBounds[i];
    EXPECT_EQ(M::BucketIndex(bound), static_cast<size_t>(i)) << bound;
    const double above = std::nextafter(bound, 1e300);
    EXPECT_EQ(M::BucketIndex(above), static_cast<size_t>(i) + 1) << bound;
    if (i > 0) {
      const double below = std::nextafter(bound, 0.0);
      EXPECT_EQ(M::BucketIndex(below), static_cast<size_t>(i)) << bound;
    }
  }
  // Zero (a stage that charged nothing) lands in the smallest bucket.
  EXPECT_EQ(M::BucketIndex(0.0), 0u);
  EXPECT_EQ(M::BucketIndex(-1.0), 0u);
  // Values beyond the largest finite bound land in +Inf.
  EXPECT_EQ(M::BucketIndex(std::nextafter(1e5, 1e300)),
            static_cast<size_t>(M::kFiniteBuckets));
  EXPECT_EQ(M::BucketIndex(1e18), static_cast<size_t>(M::kFiniteBuckets));
  // The label table matches the bound table entry for entry.
  EXPECT_STREQ(M::kBucketLabels[0], "1e-06");
  EXPECT_STREQ(M::kBucketLabels[M::kFiniteBuckets - 1], "100000");
}

// ---------------------------------------------------------------------------
// Counter / gauge agreement with the engine's own accounting

TEST(MetricsObserverTest, CountersAndGaugesAgreeWithEngineTotals) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 2e9;  // tight: force evictions
  DeepSeaEngine engine(&catalog, options);

  MetricsObserver metrics;
  metrics.set_pool(&engine.pool());
  engine.set_observer(&metrics);

  const auto names = BigBenchTemplates::Names();
  Rng rng(11);
  const int kQueries = 40;
  int64_t from_views = 0, fragments_read = 0, replanned = 0;
  for (int i = 0; i < kQueries; ++i) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double lo = rng.Uniform(0.0, 200000.0);
    auto plan = BigBenchTemplates::Build(name, lo, lo + 50000.0);
    ASSERT_TRUE(plan.ok());
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok());
    from_views += report->used_view.empty() ? 0 : 1;
    fragments_read += report->fragments_read;
    replanned += report->replanned ? 1 : 0;
  }

  const auto snap = metrics.TakeSnapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);  // single-tenant engine: tenant ""
  const auto& t = snap.tenants.at("");
  const EngineTotals& totals = engine.totals();

  EXPECT_EQ(t.queries, totals.queries);
  EXPECT_EQ(t.queries, kQueries);
  EXPECT_EQ(t.replanned_queries, replanned);
  EXPECT_EQ(t.queries_from_views, totals.queries_answered_from_views);
  EXPECT_EQ(t.queries_from_views, from_views);
  EXPECT_EQ(t.fragments_read, fragments_read);
  EXPECT_EQ(t.views_materialized, totals.views_created);
  EXPECT_EQ(t.fragments_materialized, totals.fragments_created);
  EXPECT_EQ(t.evictions, totals.fragments_evicted);
  EXPECT_GT(t.evictions, 0);
  EXPECT_EQ(t.merges, totals.fragments_merged);
  EXPECT_EQ(t.faults, totals.faults);
  EXPECT_EQ(t.retries, totals.retries);
  EXPECT_EQ(t.degraded_queries, totals.queries_degraded);

  // The per-query simulated-cost histogram aggregates exactly what the
  // engine charged (same accumulation order as EngineTotals).
  EXPECT_EQ(t.query_sim.count, totals.queries);
  EXPECT_DOUBLE_EQ(t.query_sim.sum, totals.total_seconds);
  uint64_t histogram_total = 0;
  for (uint64_t b : t.query_sim.buckets) histogram_total += b;
  EXPECT_EQ(histogram_total, static_cast<uint64_t>(kQueries));

  // Pool byte flux: what entered minus what left is what is resident.
  EXPECT_NEAR(t.materialized_bytes - t.evicted_bytes, engine.PoolBytes(),
              1e-6 * std::max(1.0, engine.PoolBytes()));

  // Gauges agree with a direct scan of the quiesced pool.
  ASSERT_TRUE(snap.pool.present);
  EXPECT_DOUBLE_EQ(snap.pool.pool_bytes, engine.PoolBytes());
  EXPECT_DOUBLE_EQ(snap.pool.pool_limit_bytes, options.pool_limit_bytes);
  EXPECT_EQ(snap.pool.commit_clock, engine.pool().clock());
  int64_t views_tracked = 0, views_mat = 0, frags = 0, frags_mat = 0;
  for (const ViewInfo* v : engine.views().AllViews()) {
    ++views_tracked;
    if (v->InPool()) ++views_mat;
    for (const auto& [attr, part] : v->partitions) {
      (void)attr;
      for (const FragmentStats& f : part.fragments) {
        ++frags;
        if (f.materialized) ++frags_mat;
      }
    }
  }
  EXPECT_EQ(snap.pool.views_tracked, views_tracked);
  EXPECT_EQ(snap.pool.views_materialized, views_mat);
  EXPECT_EQ(snap.pool.fragments_tracked, frags);
  EXPECT_EQ(snap.pool.fragments_materialized, frags_mat);
  EXPECT_EQ(snap.pool.views_quarantined, 0);
  EXPECT_GE(snap.pool.commit_lock_hold_fraction, 0.0);

  // Totals() over one tenant is that tenant.
  const auto sum = snap.Totals();
  EXPECT_EQ(sum.queries, t.queries);
  EXPECT_EQ(sum.evictions, t.evictions);
  EXPECT_DOUBLE_EQ(sum.materialized_bytes, t.materialized_bytes);

  // The per-stage sim histogram mirrors the stage call counts: every
  // query ran rewrite/candidates/selection/apply exactly once.
  for (EngineStage s : {EngineStage::kRewrite, EngineStage::kCandidates,
                        EngineStage::kSelection, EngineStage::kApply}) {
    EXPECT_EQ(t.stage_sim[static_cast<size_t>(s)].count, kQueries)
        << EngineStageName(s);
  }
  EXPECT_EQ(t.stage_sim[static_cast<size_t>(EngineStage::kMerge)].count, 0);
}

// ---------------------------------------------------------------------------
// Exposition rendering: validity, byte-stability, golden

struct RenderedRun {
  std::string deterministic;  ///< include_host_metrics = false
  std::string full;           ///< include_host_metrics = true
};

RenderedRun RunDeterministicWorkload() {
  Catalog catalog;
  EXPECT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 10e9;
  DeepSeaEngine engine(&catalog, options);
  MetricsObserver metrics;
  metrics.set_pool(&engine.pool());
  engine.set_observer(&metrics);

  const auto queries = mt::SdssTenantWorkload(40, 2017);
  for (const auto& q : queries) {
    auto plan =
        BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
    EXPECT_TRUE(plan.ok());
    EXPECT_TRUE(engine.ProcessQuery(*plan).ok());
  }
  RenderedRun out;
  MetricsObserver::RenderOptions deterministic;
  deterministic.include_host_metrics = false;
  out.deterministic = metrics.RenderPrometheusText(deterministic);
  out.full = metrics.RenderPrometheusText();
  return out;
}

TEST(MetricsExpositionTest, RenderPassesTheValidatorAndIsByteStable) {
  const RenderedRun first = RunDeterministicWorkload();
  const RenderedRun second = RunDeterministicWorkload();

  // Both render modes are valid exposition format.
  Status valid = ValidatePrometheusText(first.full);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  valid = ValidatePrometheusText(first.deterministic);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  // The deterministic render is a pure function of the workload: two
  // independent runs agree byte for byte.
  EXPECT_EQ(first.deterministic, second.deterministic);

  // The host-metric series really are excluded from the deterministic
  // render and present in the full one.
  EXPECT_EQ(first.deterministic.find("deepsea_stage_wall_seconds"),
            std::string::npos);
  EXPECT_EQ(first.deterministic.find("deepsea_commit_lock_"),
            std::string::npos);
  EXPECT_NE(first.full.find("deepsea_stage_wall_seconds"), std::string::npos);
  EXPECT_NE(first.full.find("deepsea_commit_lock_hold_fraction"),
            std::string::npos);
}

TEST(MetricsExpositionTest, MatchesGoldenExposition) {
  const std::string path =
      std::string(DEEPSEA_GOLDEN_DIR) + "/metrics_exposition.golden";
  const RenderedRun run = RunDeterministicWorkload();
  if (std::getenv("DEEPSEA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << run.deterministic;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << "; run with DEEPSEA_REGEN_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(run.deterministic, buffer.str())
      << "metrics exposition drifted from the golden; regenerate only if "
         "the change is intended";
}

TEST(MetricsExpositionTest, EveryRegisteredSeriesIsDocumented) {
  std::ifstream in(DEEPSEA_OBSERVABILITY_MD);
  ASSERT_TRUE(in.good()) << "missing " << DEEPSEA_OBSERVABILITY_MD;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  for (const MetricInfo& m : MetricsObserver::Registry()) {
    EXPECT_NE(doc.find(m.name), std::string::npos)
        << "OBSERVABILITY.md does not document exported series " << m.name;
  }
}

TEST(MetricsExpositionTest, RegistryCoversEveryRenderedFamily) {
  const RenderedRun run = RunDeterministicWorkload();
  // Every "# TYPE name type" line in a full render must be a registry
  // entry with the same type — the registry cannot lag the renderer.
  std::stringstream lines(run.full);
  std::string line;
  int families = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    ++families;
    std::stringstream fields(line);
    std::string hash, keyword, name, type;
    fields >> hash >> keyword >> name >> type;
    bool found = false;
    for (const MetricInfo& m : MetricsObserver::Registry()) {
      if (name == m.name) {
        found = true;
        EXPECT_EQ(type, m.type) << name;
      }
    }
    EXPECT_TRUE(found) << "rendered family missing from Registry(): " << name;
  }
  EXPECT_EQ(static_cast<size_t>(families),
            MetricsObserver::Registry().size());
}

// ---------------------------------------------------------------------------
// The exposition-format validator itself

TEST(PromValidatorTest, AcceptsACompleteWellFormedExposition) {
  const std::string text =
      "# HELP demo_total A counter.\n"
      "# TYPE demo_total counter\n"
      "demo_total{tenant=\"a\\\"b\\\\c\\nd\"} 3\n"
      "demo_total{tenant=\"other\"} 0\n"
      "# TYPE demo_seconds histogram\n"
      "demo_seconds_bucket{le=\"0.1\"} 1\n"
      "demo_seconds_bucket{le=\"+Inf\"} 2\n"
      "demo_seconds_sum 1.5\n"
      "demo_seconds_count 2\n"
      "# TYPE demo_gauge gauge\n"
      "demo_gauge -1.5e3 1700000000000\n";
  const Status s = ValidatePrometheusText(text);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PromValidatorTest, RejectsMalformedInput) {
  const struct {
    const char* label;
    const char* text;
  } kCases[] = {
      {"empty", ""},
      {"no trailing newline", "a_total 1"},
      {"bad metric name", "9metric 1\n"},
      {"bad label name", "a_total{9l=\"x\"} 1\n"},
      {"unquoted label value", "a_total{l=x} 1\n"},
      {"bad escape", "a_total{l=\"\\q\"} 1\n"},
      {"unterminated label value", "a_total{l=\"x} 1\n"},
      {"bad value", "a_total one\n"},
      {"duplicate series", "a_total{l=\"x\"} 1\na_total{l=\"x\"} 2\n"},
      {"duplicate label", "a_total{l=\"x\",l=\"y\"} 1\n"},
      {"negative counter",
       "# TYPE a_total counter\na_total -1\n"},
      {"TYPE after samples", "a_total 1\n# TYPE a_total counter\n"},
      {"second TYPE",
       "# TYPE a_total counter\n# TYPE a_total gauge\na_total 1\n"},
      {"unknown type", "# TYPE a_total widget\na_total 1\n"},
      {"non-contiguous family",
       "a_total 1\nb_total 1\na_total{l=\"x\"} 2\n"},
      {"histogram without +Inf",
       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
      {"histogram count mismatch",
       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
      {"histogram non-cumulative",
       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n"
       "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
      {"histogram missing sum",
       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
      {"histogram bare sample",
       "# TYPE h histogram\nh 1\n"},
      {"bucket without le",
       "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
      {"trailing garbage", "a_total 1 soon\n"},
  };
  for (const auto& c : kCases) {
    EXPECT_FALSE(ValidatePrometheusText(c.text).ok()) << c.label;
  }
}

// ---------------------------------------------------------------------------
// MulticastObserver fan-out

TEST(MulticastObserverTest, ForwardsEveryHookToAllSinksInOrder) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 2e9;
  DeepSeaEngine engine(&catalog, options);

  // Two identical metrics sinks behind one multicast: both must end up
  // with identical snapshots (every hook reached both).
  MetricsObserver a, b;
  MulticastObserver multicast;
  EXPECT_EQ(multicast.size(), 0u);
  multicast.Add(&a);
  multicast.Add(&b);
  multicast.Add(nullptr);  // ignored
  EXPECT_EQ(multicast.size(), 2u);
  engine.set_observer(&multicast);

  const auto names = BigBenchTemplates::Names();
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const double lo = rng.Uniform(0.0, 200000.0);
    auto plan = BigBenchTemplates::Build(
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))], lo,
        lo + 50000.0);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.ProcessQuery(*plan).ok());
  }

  const auto sa = a.TakeSnapshot();
  const auto sb = b.TakeSnapshot();
  ASSERT_EQ(sa.tenants.size(), 1u);
  ASSERT_EQ(sb.tenants.size(), 1u);
  const auto& ta = sa.tenants.at("");
  const auto& tb = sb.tenants.at("");
  EXPECT_EQ(ta.queries, 20);
  EXPECT_EQ(tb.queries, ta.queries);
  EXPECT_EQ(tb.views_materialized, ta.views_materialized);
  EXPECT_EQ(tb.fragments_materialized, ta.fragments_materialized);
  EXPECT_EQ(tb.evictions, ta.evictions);
  EXPECT_EQ(tb.fragments_read, ta.fragments_read);
  EXPECT_DOUBLE_EQ(tb.materialized_bytes, ta.materialized_bytes);
  EXPECT_DOUBLE_EQ(tb.query_sim.sum, ta.query_sim.sum);
  EXPECT_GT(ta.views_materialized + ta.fragments_materialized, 0);
}

// ---------------------------------------------------------------------------
// Multi-tenant: one shared MetricsObserver across concurrent engines

constexpr int kTenants = 3;
constexpr int kQueriesPerTenant = 12;

std::vector<std::vector<PlanPtr>> TenantPlans() {
  std::vector<std::vector<PlanPtr>> plans;
  for (int t = 0; t < kTenants; ++t) {
    plans.push_back(mt::BuildPlans(
        mt::SdssTenantWorkload(kQueriesPerTenant, 9000 + 7 * t)));
  }
  return plans;
}

std::vector<std::string> TenantNames() {
  return {"astro", "geo", "retail"};
}

/// Pinned-schedule contract: a threaded run through one shared
/// MetricsObserver must produce, per tenant, exactly the metrics of a
/// sequential replay of the same commit order observed per-tenant —
/// integer counters AND sim-time double sums (each tenant's shard sees
/// its additions in the same order either way). TSan runs this test
/// with real threads hammering the shared observer.
TEST(MetricsMultiTenantTest, SharedObserverEqualsPerTenantSequentialRuns) {
  const auto tenants = TenantNames();
  const auto plans = TenantPlans();
  const std::vector<int> schedule = mt::ShuffledSchedule(
      std::vector<int>(kTenants, kQueriesPerTenant), 42);
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 8e9;

  // Threaded turnstile run, one shared observer across all engines. No
  // set_pool here: the harness owns the SharedPool and destroys it when
  // RunScheduled returns, and an attached pool must outlive every
  // scrape (the free-running test covers pool gauges with a live pool).
  MetricsObserver shared;
  Catalog catalog_threaded;
  ASSERT_TRUE(
      BigBenchDataset::Generate(DataOptions(), &catalog_threaded).ok());
  mt::RunScheduled(&catalog_threaded, options, tenants, plans, schedule,
                   /*threaded=*/true, nullptr,
                   [&](DeepSeaEngine* engine, int t) {
                     (void)t;
                     engine->set_observer(&shared);
                   });

  // Sequential replay of the same schedule, one observer per tenant.
  std::vector<std::unique_ptr<MetricsObserver>> per(kTenants);
  Catalog catalog_sequential;
  ASSERT_TRUE(
      BigBenchDataset::Generate(DataOptions(), &catalog_sequential).ok());
  mt::RunScheduled(&catalog_sequential, options, tenants, plans, schedule,
                   /*threaded=*/false, nullptr,
                   [&](DeepSeaEngine* engine, int t) {
                     per[static_cast<size_t>(t)] =
                         std::make_unique<MetricsObserver>();
                     engine->set_observer(per[static_cast<size_t>(t)].get());
                   });

  const auto merged = shared.TakeSnapshot();
  ASSERT_EQ(merged.tenants.size(), static_cast<size_t>(kTenants));
  MetricsObserver::MetricsSnapshot::Tenant sum_of_sequential;
  for (int t = 0; t < kTenants; ++t) {
    const auto solo = per[static_cast<size_t>(t)]->TakeSnapshot();
    ASSERT_EQ(solo.tenants.size(), 1u) << tenants[static_cast<size_t>(t)];
    const auto& want = solo.tenants.begin()->second;
    ASSERT_TRUE(merged.tenants.count(tenants[static_cast<size_t>(t)]));
    const auto& got = merged.tenants.at(tenants[static_cast<size_t>(t)]);

    EXPECT_EQ(got.queries, want.queries) << tenants[static_cast<size_t>(t)];
    EXPECT_EQ(got.queries_from_views, want.queries_from_views);
    EXPECT_EQ(got.degraded_queries, want.degraded_queries);
    EXPECT_EQ(got.fragments_read, want.fragments_read);
    EXPECT_EQ(got.views_materialized, want.views_materialized);
    EXPECT_EQ(got.fragments_materialized, want.fragments_materialized);
    EXPECT_EQ(got.evictions, want.evictions);
    EXPECT_EQ(got.merges, want.merges);
    EXPECT_EQ(got.faults, want.faults);
    EXPECT_EQ(got.retries, want.retries);
    EXPECT_EQ(got.degrades, want.degrades);
    EXPECT_DOUBLE_EQ(got.materialized_bytes, want.materialized_bytes);
    EXPECT_DOUBLE_EQ(got.evicted_bytes, want.evicted_bytes);
    EXPECT_EQ(got.query_sim.count, want.query_sim.count);
    EXPECT_DOUBLE_EQ(got.query_sim.sum, want.query_sim.sum);
    for (size_t b = 0; b < MetricsObserver::kBucketCount; ++b) {
      EXPECT_EQ(got.query_sim.buckets[b], want.query_sim.buckets[b]);
    }
    // Per-stage sim histograms too (replans replay planning stages, and
    // the pinned schedule makes even those counts deterministic).
    for (size_t s = 0; s < MetricsObserver::kStageCount; ++s) {
      EXPECT_EQ(got.stage_sim[s].count, want.stage_sim[s].count)
          << tenants[static_cast<size_t>(t)] << " stage " << s;
      EXPECT_DOUBLE_EQ(got.stage_sim[s].sum, want.stage_sim[s].sum);
    }

    sum_of_sequential.queries += want.queries;
    sum_of_sequential.evictions += want.evictions;
    sum_of_sequential.fragments_materialized += want.fragments_materialized;
  }
  // And the acceptance phrasing: merged totals == sum of per-tenant
  // sequential runs for the monotonic counters.
  const auto merged_totals = merged.Totals();
  EXPECT_EQ(merged_totals.queries, sum_of_sequential.queries);
  EXPECT_EQ(merged_totals.queries, kTenants * kQueriesPerTenant);
  EXPECT_EQ(merged_totals.evictions, sum_of_sequential.evictions);
  EXPECT_EQ(merged_totals.fragments_materialized,
            sum_of_sequential.fragments_materialized);
}

/// Free-running engines (no turnstile) hammering one shared observer:
/// the run is not schedule-deterministic, but every counter must still
/// add up — this is the TSan data-race probe for the sharded hot path.
TEST(MetricsMultiTenantTest, FreeRunningEnginesKeepCountersConsistent) {
  const auto tenants = TenantNames();
  const auto plans = TenantPlans();
  EngineOptions options = BaseOptions();
  options.pool_limit_bytes = 8e9;

  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  SharedPool pool(&catalog, options);
  MetricsObserver shared;
  shared.set_pool(pool.pool());
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  for (int t = 0; t < kTenants; ++t) {
    engines.push_back(std::make_unique<DeepSeaEngine>(
        &catalog, &pool, tenants[static_cast<size_t>(t)]));
    engines.back()->set_observer(&shared);
  }
  std::vector<int64_t> processed(kTenants, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kTenants; ++t) {
      threads.emplace_back([&, t] {
        for (const PlanPtr& plan : plans[static_cast<size_t>(t)]) {
          if (engines[static_cast<size_t>(t)]->ProcessQuery(plan).ok()) {
            ++processed[static_cast<size_t>(t)];
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }

  const auto snap = shared.TakeSnapshot();
  for (int t = 0; t < kTenants; ++t) {
    const auto& name = tenants[static_cast<size_t>(t)];
    ASSERT_TRUE(snap.tenants.count(name)) << name;
    const auto& m = snap.tenants.at(name);
    EXPECT_EQ(m.queries, processed[static_cast<size_t>(t)]) << name;
    EXPECT_EQ(m.query_sim.count, m.queries) << name;
    // Each engine totals its own tenant; the observer must agree.
    const EngineTotals& totals = engines[static_cast<size_t>(t)]->totals();
    EXPECT_EQ(m.views_materialized, totals.views_created) << name;
    EXPECT_EQ(m.fragments_materialized, totals.fragments_created) << name;
    EXPECT_EQ(m.evictions, totals.fragments_evicted) << name;
    EXPECT_EQ(m.queries_from_views, totals.queries_answered_from_views);
  }
  // Scrape after the run is well-formed (gauges read the shared pool).
  const Status valid = ValidatePrometheusText(shared.RenderPrometheusText());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

}  // namespace
}  // namespace deepsea
