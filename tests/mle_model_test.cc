#include "core/mle_model.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

FragmentStats Frag(double lo, double hi, int hits, double hit_time = 100) {
  FragmentStats f;
  f.interval = Interval(lo, hi);
  f.size_bytes = (hi - lo) * 10;
  for (int i = 0; i < hits; ++i) f.RecordHit(hit_time);
  return f;
}

TEST(MleModelTest, NoHitsYieldsZeroAdjusted) {
  MleFragmentModel model;
  DecayFunction dec;
  std::vector<FragmentStats> frags = {Frag(0, 50, 0), Frag(50, 100, 0)};
  const auto adj = model.Adjust(frags, Interval(0, 100), 100, dec);
  EXPECT_EQ(adj.total, 0.0);
  EXPECT_EQ(adj.hits[0], 0.0);
  EXPECT_EQ(adj.hits[1], 0.0);
}

TEST(MleModelTest, TotalMassPreservedApproximately) {
  MleFragmentModel model;
  DecayFunction dec(DecayConfig{1e9, true});
  std::vector<FragmentStats> frags = {Frag(0, 25, 10), Frag(25, 50, 20),
                                      Frag(50, 75, 10), Frag(75, 100, 2)};
  const auto adj = model.Adjust(frags, Interval(0, 100), 100, dec);
  double sum = 0.0;
  for (double h : adj.hits) sum += h;
  // The Normal has tails outside the domain; most mass stays inside.
  EXPECT_GT(sum, 0.8 * adj.total);
  EXPECT_LE(sum, adj.total + 1e-9);
}

TEST(MleModelTest, NeighborOfHotSpotBeatsDistantFragment) {
  // This is the paper's motivating example (Section 7.1): hits on
  // [0, 5], none on [6, 10] and [11, 15]. The neighbor [6, 10] must get
  // more adjusted hits than the distant [11, 15].
  MleFragmentModel model;
  DecayFunction dec(DecayConfig{1e9, true});
  std::vector<FragmentStats> frags = {Frag(0, 5, 20), Frag(5, 10, 0),
                                      Frag(10, 15, 0)};
  const auto adj = model.Adjust(frags, Interval(0, 15), 100, dec);
  EXPECT_GT(adj.hits[0], adj.hits[1]);
  EXPECT_GT(adj.hits[1], adj.hits[2]);
  EXPECT_GT(adj.hits[1], 0.0);
}

TEST(MleModelTest, FitRecoversHotSpotCenter) {
  MleFragmentModel model;
  DecayFunction dec(DecayConfig{1e9, true});
  std::vector<FragmentStats> frags;
  for (int i = 0; i < 10; ++i) {
    // Hits concentrated around [40, 60].
    const double lo = i * 10.0, hi = lo + 10.0;
    const int hits = (lo >= 30 && hi <= 70) ? 20 : 1;
    frags.push_back(Frag(lo, hi, hits));
  }
  const auto adj = model.Adjust(frags, Interval(0, 100), 100, dec);
  ASSERT_TRUE(adj.fit.valid);
  EXPECT_NEAR(adj.fit.mean, 50.0, 5.0);
  EXPECT_GT(adj.fit.stddev, 0.0);
}

TEST(MleModelTest, DecayReducesOldHitInfluence) {
  MleFragmentModel model;
  DecayFunction dec(DecayConfig{1e9, true});
  // Old hits on the left, recent hits on the right.
  std::vector<FragmentStats> frags = {Frag(0, 50, 10, /*hit_time=*/10),
                                      Frag(50, 100, 10, /*hit_time=*/1000)};
  const auto adj = model.Adjust(frags, Interval(0, 100), 1000, dec);
  ASSERT_TRUE(adj.fit.valid);
  // Mean pulled toward the recent (right) side.
  EXPECT_GT(adj.fit.mean, 50.0);
}

TEST(MleModelTest, ChoosePartCountRespectsSmallFragments) {
  MleFragmentModel model(MleConfig{/*target_parts=*/8, /*max_parts=*/1024});
  std::vector<FragmentStats> frags = {Frag(0, 2, 1), Frag(2, 100, 1)};
  // Smallest fragment has width 2 over domain width 100 -> needs >= 50.
  const int parts = model.ChoosePartCount(frags, Interval(0, 100));
  EXPECT_GE(parts, 50);
  EXPECT_LE(parts, 1024);
}

TEST(MleModelTest, ChoosePartCountCapped) {
  MleFragmentModel model(MleConfig{8, 64});
  std::vector<FragmentStats> frags = {Frag(0, 0.001, 1), Frag(0.001, 100, 1)};
  EXPECT_EQ(model.ChoosePartCount(frags, Interval(0, 100)), 64);
}

TEST(MleModelTest, SingleFragmentAllMass) {
  MleFragmentModel model;
  DecayFunction dec(DecayConfig{1e9, true});
  std::vector<FragmentStats> frags = {Frag(0, 100, 5)};
  const auto adj = model.Adjust(frags, Interval(0, 100), 100, dec);
  EXPECT_NEAR(adj.hits[0], adj.total, 0.25 * adj.total);
}

TEST(MleModelTest, EmptyDomainSafe) {
  MleFragmentModel model;
  DecayFunction dec;
  std::vector<FragmentStats> frags = {Frag(5, 5, 3)};
  const auto adj = model.Adjust(frags, Interval(5, 5), 100, dec);
  EXPECT_EQ(adj.hits.size(), 1u);
}

}  // namespace
}  // namespace deepsea
