#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include "catalog/table.h"
#include "common/rng.h"

namespace deepsea {
namespace {

TEST(HistogramTest, AddAndTotal) {
  AttributeHistogram h(Interval(0, 100), 10);
  h.Add(5);
  h.Add(15);
  h.Add(15);
  EXPECT_DOUBLE_EQ(h.total_count(), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_count(1), 2.0);
}

TEST(HistogramTest, OutOfDomainClampsToEdges) {
  AttributeHistogram h(Interval(0, 100), 10);
  h.Add(-5);
  h.Add(200);
  EXPECT_DOUBLE_EQ(h.bin_count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_count(9), 1.0);
}

TEST(HistogramTest, FractionInRangeUniform) {
  AttributeHistogram h(Interval(0, 100), 100);
  h.AddRange(Interval(0, 100), 1000);
  EXPECT_NEAR(h.FractionInRange(Interval(0, 50)), 0.5, 1e-9);
  EXPECT_NEAR(h.FractionInRange(Interval(25, 75)), 0.5, 1e-9);
  EXPECT_NEAR(h.FractionInRange(Interval(0, 100)), 1.0, 1e-9);
  EXPECT_NEAR(h.FractionInRange(Interval(-50, 0)), 0.0, 1e-6);
}

TEST(HistogramTest, FractionInterpolatesPartialBins) {
  AttributeHistogram h(Interval(0, 10), 1);  // one bin
  h.AddRange(Interval(0, 10), 100);
  EXPECT_NEAR(h.FractionInRange(Interval(0, 2.5)), 0.25, 1e-9);
}

TEST(HistogramTest, SkewedMass) {
  AttributeHistogram h(Interval(0, 100), 10);
  h.AddRange(Interval(0, 10), 900);   // hot first bin
  h.AddRange(Interval(10, 100), 100);  // cold tail
  EXPECT_NEAR(h.FractionInRange(Interval(0, 10)), 0.9, 1e-9);
  EXPECT_GT(h.MassInRange(Interval(0, 10)), h.MassInRange(Interval(10, 100)) * 8);
}

TEST(HistogramTest, EquiDepthBoundariesUniform) {
  AttributeHistogram h(Interval(0, 100), 100);
  h.AddRange(Interval(0, 100), 1000);
  const auto bounds = h.EquiDepthBoundaries(4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 100.0);
  EXPECT_NEAR(bounds[1], 25.0, 1.5);
  EXPECT_NEAR(bounds[2], 50.0, 1.5);
  EXPECT_NEAR(bounds[3], 75.0, 1.5);
}

TEST(HistogramTest, EquiDepthBoundariesSkewed) {
  AttributeHistogram h(Interval(0, 100), 100);
  h.AddRange(Interval(0, 10), 900);
  h.AddRange(Interval(10, 100), 100);
  const auto bounds = h.EquiDepthBoundaries(2);
  ASSERT_EQ(bounds.size(), 3u);
  // Half the mass sits well inside [0, 10].
  EXPECT_LT(bounds[1], 10.0);
}

TEST(HistogramTest, EquiDepthSpansHaveEqualMass) {
  Rng rng(3);
  AttributeHistogram h(Interval(0, 1000), 200);
  for (int i = 0; i < 20000; ++i) h.Add(rng.Gaussian(300, 80));
  const int k = 8;
  const auto bounds = h.EquiDepthBoundaries(k);
  ASSERT_EQ(bounds.size(), static_cast<size_t>(k + 1));
  for (int i = 0; i < k; ++i) {
    const double mass = h.FractionInRange(Interval(bounds[i], bounds[i + 1]));
    EXPECT_NEAR(mass, 1.0 / k, 0.02) << "span " << i;
  }
}

TEST(HistogramTest, NormalizePreservesShape) {
  AttributeHistogram h(Interval(0, 10), 2);
  h.AddRange(Interval(0, 5), 30);
  h.AddRange(Interval(5, 10), 10);
  h.NormalizeTo(100);
  EXPECT_DOUBLE_EQ(h.total_count(), 100.0);
  EXPECT_NEAR(h.FractionInRange(Interval(0, 5)), 0.75, 1e-9);
}

TEST(HistogramTest, EmptyHistogramFractionZero) {
  AttributeHistogram h(Interval(0, 10), 4);
  EXPECT_EQ(h.FractionInRange(Interval(0, 10)), 0.0);
  EXPECT_TRUE(h.empty());
}

TEST(TableTest, RegisterAndLookup) {
  Catalog catalog;
  auto t = std::make_shared<Table>(
      "t", Schema({{"t.a", DataType::kInt64}}));
  ASSERT_TRUE(catalog.Register(t).ok());
  EXPECT_TRUE(catalog.Contains("t"));
  EXPECT_FALSE(catalog.Register(t).ok());  // duplicate
  auto got = catalog.Get("t");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name(), "t");
  EXPECT_FALSE(catalog.Get("zzz").ok());
}

TEST(TableTest, DropAndList) {
  Catalog catalog;
  catalog.Put(std::make_shared<Table>("b", Schema{}));
  catalog.Put(std::make_shared<Table>("a", Schema{}));
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(catalog.Drop("a").ok());
  EXPECT_FALSE(catalog.Drop("a").ok());
}

TEST(TableTest, LogicalBytes) {
  Table t("t", Schema{});
  t.set_logical_row_count(1000);
  t.set_avg_row_bytes(50);
  EXPECT_DOUBLE_EQ(t.logical_bytes(), 50000.0);
}

TEST(TableTest, BuildHistogramFromSample) {
  Table t("t", Schema({{"t.a", DataType::kInt64}}));
  for (int i = 0; i < 100; ++i) t.AddRow({Value(static_cast<int64_t>(i))});
  t.set_logical_row_count(10000);
  ASSERT_TRUE(t.BuildHistogram("t.a", 10).ok());
  const AttributeHistogram* h = t.GetHistogram("t.a");
  ASSERT_NE(h, nullptr);
  // Scaled to logical rows.
  EXPECT_NEAR(h->total_count(), 10000.0, 1e-6);
  EXPECT_NEAR(h->FractionInRange(Interval(0, 49.5)), 0.5, 0.02);
}

TEST(TableTest, HistogramLookupByShortName) {
  Table t("t", Schema({{"t.a", DataType::kInt64}}));
  t.SetHistogram("t.a", AttributeHistogram(Interval(0, 1), 1));
  EXPECT_NE(t.GetHistogram("a"), nullptr);
  EXPECT_NE(t.GetHistogram("t.a"), nullptr);
  EXPECT_EQ(t.GetHistogram("b"), nullptr);
}

TEST(TableTest, SampleMinMax) {
  Table t("t", Schema({{"t.a", DataType::kInt64}}));
  t.AddRow({Value(int64_t{5})});
  t.AddRow({Value(int64_t{-2})});
  t.AddRow({Value(int64_t{9})});
  auto mm = t.SampleMinMax("t.a");
  ASSERT_TRUE(mm.ok());
  EXPECT_EQ(mm->lo, -2.0);
  EXPECT_EQ(mm->hi, 9.0);
  EXPECT_FALSE(t.SampleMinMax("t.zzz").ok());
}

TEST(TableTest, NdvStorage) {
  Table t("t", Schema({{"t.a", DataType::kInt64}}));
  EXPECT_EQ(t.ndv("t.a"), 0.0);
  t.set_ndv("a", 42.0);  // short name resolves
  EXPECT_EQ(t.ndv("t.a"), 42.0);
  EXPECT_EQ(t.ndv("a"), 42.0);
}

TEST(TableTest, TotalLogicalBytes) {
  Catalog catalog;
  auto a = std::make_shared<Table>("a", Schema{});
  a->set_logical_row_count(10);
  a->set_avg_row_bytes(10);
  auto b = std::make_shared<Table>("b", Schema{});
  b->set_logical_row_count(5);
  b->set_avg_row_bytes(100);
  catalog.Put(a);
  catalog.Put(b);
  EXPECT_DOUBLE_EQ(catalog.TotalLogicalBytes(), 600.0);
}

}  // namespace
}  // namespace deepsea
