#include "core/view_stats.h"

#include <gtest/gtest.h>

#include "core/policy.h"

namespace deepsea {
namespace {

TEST(DecayTest, PaperFormula) {
  DecayFunction dec(DecayConfig{/*t_max=*/100.0, /*enabled=*/true});
  EXPECT_DOUBLE_EQ(dec(10, 5), 0.5);      // t / t_now
  EXPECT_DOUBLE_EQ(dec(200, 50), 0.0);    // older than t_max
  EXPECT_DOUBLE_EQ(dec(100, 100), 1.0);   // just now
  EXPECT_DOUBLE_EQ(dec(0, 0), 1.0);       // degenerate start
}

TEST(DecayTest, MonotonicallyDecreasingInAge) {
  DecayFunction dec(DecayConfig{1000.0, true});
  double prev = 1.0;
  for (double t = 100; t >= 10; t -= 10) {
    const double w = dec(100, t);
    EXPECT_LE(w, prev);
    prev = w;
  }
}

TEST(DecayTest, DisabledIsIdentity) {
  DecayFunction dec(DecayConfig{10.0, false});
  EXPECT_DOUBLE_EQ(dec(1000, 1), 1.0);
}

TEST(ViewStatsTest, AccumulatedBenefitDecays) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.RecordUse(50, 100);   // at t=100: weight 0.5 -> 50
  stats.RecordUse(100, 100);  // weight 1.0 -> 100
  EXPECT_DOUBLE_EQ(stats.AccumulatedBenefit(100, dec), 150.0);
  EXPECT_DOUBLE_EQ(stats.UndecayedBenefit(), 200.0);
}

TEST(ViewStatsTest, BenefitTimesOut) {
  DecayFunction dec(DecayConfig{10.0, true});
  ViewStats stats;
  stats.RecordUse(5, 100);
  EXPECT_GT(stats.AccumulatedBenefit(10, dec), 0.0);
  EXPECT_DOUBLE_EQ(stats.AccumulatedBenefit(100, dec), 0.0);
}

TEST(ViewStatsTest, ValueFormula) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.creation_cost = 200;
  stats.size_bytes = 1000;
  stats.RecordUse(100, 50);
  // Phi = COST * B / S = 200 * 50 / 1000 = 10 at t=100.
  EXPECT_DOUBLE_EQ(stats.Value(100, dec), 10.0);
}

TEST(ViewStatsTest, LastUse) {
  ViewStats stats;
  EXPECT_EQ(stats.LastUse(), 0.0);
  stats.RecordUse(5, 1);
  stats.RecordUse(9, 1);
  stats.RecordUse(7, 1);
  EXPECT_EQ(stats.LastUse(), 9.0);
}

TEST(FragmentStatsTest, DecayedHits) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.RecordHit(50);
  f.RecordHit(100);
  EXPECT_DOUBLE_EQ(f.DecayedHits(100, dec), 1.5);
  EXPECT_DOUBLE_EQ(f.RawHits(), 2.0);
}

TEST(FragmentStatsTest, BenefitProportionalToSizeFraction) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.size_bytes = 100;
  f.RecordHit(100);
  // B = hits * S(I)/S(V) * COST(V) = 1 * 0.1 * 500 = 50.
  EXPECT_DOUBLE_EQ(f.Benefit(100, dec, 1000, 500), 50.0);
  // Phi = COST * B / S = 500 * 50 / 100 = 250.
  EXPECT_DOUBLE_EQ(f.Value(100, dec, 1000, 500), 250.0);
}

TEST(FragmentStatsTest, AdjustedHitsOverride) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.size_bytes = 100;
  // No real hits, but MLE smoothing assigns 4 adjusted hits.
  EXPECT_DOUBLE_EQ(f.Benefit(100, dec, 1000, 500, /*adjusted_hits=*/4.0), 200.0);
}

TEST(PolicyTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(StrategyKind::kHive), "H");
  EXPECT_STREQ(StrategyName(StrategyKind::kNoPartition), "NP");
  EXPECT_STREQ(StrategyName(StrategyKind::kEquiDepth), "E");
  EXPECT_STREQ(StrategyName(StrategyKind::kNoRefine), "NR");
  EXPECT_STREQ(StrategyName(StrategyKind::kDeepSea), "DS");
}

TEST(PolicyTest, DeepSeaViewValueUsesDecay) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.creation_cost = 100;
  stats.size_bytes = 100;
  stats.RecordUse(50, 10);
  const double v_now = ViewValue(ValueModel::kDeepSea, stats, 100, dec);
  const double v_later = ViewValue(ValueModel::kDeepSea, stats, 500, dec);
  EXPECT_GT(v_now, v_later);
}

TEST(PolicyTest, NectarIgnoresAccumulatedBenefit) {
  DecayFunction dec;
  ViewStats poor, rich;
  poor.creation_cost = rich.creation_cost = 100;
  poor.size_bytes = rich.size_bytes = 100;
  poor.RecordUse(50, 1);      // tiny saving
  rich.RecordUse(50, 10000);  // huge saving
  EXPECT_DOUBLE_EQ(ViewValue(ValueModel::kNectar, poor, 100, dec),
                   ViewValue(ValueModel::kNectar, rich, 100, dec));
  EXPECT_LT(ViewValue(ValueModel::kNectarPlus, poor, 100, dec),
            ViewValue(ValueModel::kNectarPlus, rich, 100, dec));
}

TEST(PolicyTest, NectarValueDropsWithIdleTime) {
  DecayFunction dec;
  ViewStats stats;
  stats.creation_cost = 100;
  stats.size_bytes = 100;
  stats.RecordUse(10, 100);
  EXPECT_GT(ViewValue(ValueModel::kNectar, stats, 11, dec),
            ViewValue(ValueModel::kNectar, stats, 1000, dec));
  EXPECT_GT(ViewValue(ValueModel::kNectarPlus, stats, 11, dec),
            ViewValue(ValueModel::kNectarPlus, stats, 1000, dec));
}

TEST(PolicyTest, FilterBenefitModelSpecific) {
  DecayFunction dec(DecayConfig{10.0, true});
  ViewStats stats;
  stats.RecordUse(5, 100);
  // Old event: decayed filter sees ~0, undecayed sees 100.
  EXPECT_DOUBLE_EQ(ViewBenefitForFilter(ValueModel::kDeepSea, stats, 1000, dec),
                   0.0);
  EXPECT_DOUBLE_EQ(ViewBenefitForFilter(ValueModel::kNectarPlus, stats, 1000, dec),
                   100.0);
}

TEST(PolicyTest, FragmentValueModels) {
  DecayFunction dec;
  FragmentStats f;
  f.size_bytes = 100;
  f.RecordHit(90);
  const double ds = FragmentValue(ValueModel::kDeepSea, f, 1000, 500, 100, dec);
  const double n = FragmentValue(ValueModel::kNectar, f, 1000, 500, 100, dec);
  const double np = FragmentValue(ValueModel::kNectarPlus, f, 1000, 500, 100, dec);
  EXPECT_GT(ds, 0.0);
  EXPECT_GT(n, 0.0);
  EXPECT_GT(np, 0.0);
}

}  // namespace
}  // namespace deepsea
