#include "core/view_stats.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy.h"

namespace deepsea {
namespace {

TEST(DecayTest, PaperFormula) {
  DecayFunction dec(DecayConfig{/*t_max=*/100.0, /*enabled=*/true});
  EXPECT_DOUBLE_EQ(dec(10, 5), 0.5);      // t / t_now
  EXPECT_DOUBLE_EQ(dec(200, 50), 0.0);    // older than t_max
  EXPECT_DOUBLE_EQ(dec(100, 100), 1.0);   // just now
  EXPECT_DOUBLE_EQ(dec(0, 0), 1.0);       // degenerate start
}

TEST(DecayTest, MonotonicallyDecreasingInAge) {
  DecayFunction dec(DecayConfig{1000.0, true});
  double prev = 1.0;
  for (double t = 100; t >= 10; t -= 10) {
    const double w = dec(100, t);
    EXPECT_LE(w, prev);
    prev = w;
  }
}

TEST(DecayTest, DisabledIsIdentity) {
  DecayFunction dec(DecayConfig{10.0, false});
  EXPECT_DOUBLE_EQ(dec(1000, 1), 1.0);
}

TEST(ViewStatsTest, AccumulatedBenefitDecays) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.RecordUse(50, 100);   // at t=100: weight 0.5 -> 50
  stats.RecordUse(100, 100);  // weight 1.0 -> 100
  EXPECT_DOUBLE_EQ(stats.AccumulatedBenefit(100, dec), 150.0);
  EXPECT_DOUBLE_EQ(stats.UndecayedBenefit(), 200.0);
}

TEST(ViewStatsTest, BenefitTimesOut) {
  DecayFunction dec(DecayConfig{10.0, true});
  ViewStats stats;
  stats.RecordUse(5, 100);
  EXPECT_GT(stats.AccumulatedBenefit(10, dec), 0.0);
  EXPECT_DOUBLE_EQ(stats.AccumulatedBenefit(100, dec), 0.0);
}

TEST(ViewStatsTest, ValueFormula) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.creation_cost = 200;
  stats.size_bytes = 1000;
  stats.RecordUse(100, 50);
  // Phi = COST * B / S = 200 * 50 / 1000 = 10 at t=100.
  EXPECT_DOUBLE_EQ(stats.Value(100, dec), 10.0);
}

TEST(ViewStatsTest, LastUse) {
  ViewStats stats;
  EXPECT_EQ(stats.LastUse(), 0.0);
  stats.RecordUse(5, 1);
  stats.RecordUse(9, 1);
  // Out-of-order appends go through the assert-free path (RecordUse
  // requires commit-clock order); LastUse stays the running max.
  stats.AppendEvent({7, 1, 0});
  EXPECT_EQ(stats.LastUse(), 9.0);
}

TEST(FragmentStatsTest, DecayedHits) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.RecordHit(50);
  f.RecordHit(100);
  EXPECT_DOUBLE_EQ(f.DecayedHits(100, dec), 1.5);
  EXPECT_DOUBLE_EQ(f.RawHits(), 2.0);
}

TEST(FragmentStatsTest, BenefitProportionalToSizeFraction) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.size_bytes = 100;
  f.RecordHit(100);
  // B = hits * S(I)/S(V) * COST(V) = 1 * 0.1 * 500 = 50.
  EXPECT_DOUBLE_EQ(f.Benefit(100, dec, 1000, 500), 50.0);
  // Phi = COST * B / S = 500 * 50 / 100 = 250.
  EXPECT_DOUBLE_EQ(f.Value(100, dec, 1000, 500), 250.0);
}

TEST(FragmentStatsTest, AdjustedHitsOverride) {
  DecayFunction dec(DecayConfig{1000.0, true});
  FragmentStats f;
  f.size_bytes = 100;
  // No real hits, but MLE smoothing assigns 4 adjusted hits.
  EXPECT_DOUBLE_EQ(f.Benefit(100, dec, 1000, 500, /*adjusted_hits=*/4.0), 200.0);
}

TEST(ViewStatsTest, LastUseIsRunningMaxAcrossUnorderedAppends) {
  // AppendEvent (state restore, delta folds) bypasses the time-order
  // assert; the O(1) running max must still agree with a full scan.
  ViewStats stats;
  for (const double t : {5.0, 9.0, 2.0, 9.0, 7.5}) {
    stats.AppendEvent({t, 1.0, 0});
    EXPECT_EQ(stats.LastUse(), stats.LastUseNaive());
  }
  EXPECT_EQ(stats.LastUse(), 9.0);
}

TEST(FragmentStatsTest, LastHitIsRunningMaxAcrossAdoptAndAppend) {
  FragmentStats f;
  EXPECT_EQ(f.LastHit(), 0.0);
  // AdoptHits rebuilds the cache from an unsorted replacement list.
  f.AdoptHits({{8.0, Interval(), false, 0},
               {3.0, Interval(), false, 1},
               {6.0, Interval(), false, 0}});
  EXPECT_EQ(f.LastHit(), 8.0);
  EXPECT_EQ(f.LastHit(), f.LastHitNaive());
  // AppendHit extends it, order-free.
  f.AppendHit({5.0, Interval(), false, 0});
  EXPECT_EQ(f.LastHit(), 8.0);
  f.AppendHit({11.0, Interval(), false, 2});
  EXPECT_EQ(f.LastHit(), 11.0);
  EXPECT_EQ(f.LastHit(), f.LastHitNaive());
  f.ResetHits();
  EXPECT_EQ(f.LastHit(), 0.0);
}

// ---------------------------------------------------------------------------
// Incremental caches vs naive replay (bit-identity oracle tests).
//
// The hot-path readers (AccumulatedBenefit, UndecayedBenefit, LastUse,
// DecayedHits, LastHit) are incremental: running sums/maxima plus a
// timed-out-prefix cursor advanced by AdvanceWindow. The *Naive
// replays retained in view_stats.cc are the pre-incremental
// implementations; every comparison below is EXPECT_EQ on doubles —
// bit-identity, not tolerance — because golden traces depend on it.

TEST(ViewStatsIncrementalTest, RandomEventStreamsMatchNaiveBitIdentically) {
  int config = 0;
  for (const double t_max : {25.0, 500.0, 5000.0}) {
    for (const bool enabled : {true, false}) {
      DecayFunction dec(DecayConfig{t_max, enabled});
      std::mt19937 rng(1000u + static_cast<uint32_t>(config++));
      std::uniform_real_distribution<double> step(0.0, 8.0);
      std::uniform_real_distribution<double> saving(0.0, 50.0);
      ViewStats stats;
      double t = 0.0;
      for (int i = 0; i < 400; ++i) {
        t += step(rng);
        stats.RecordUse(t, saving(rng), static_cast<int32_t>(i % 3));
        // Interleave cursor advancement with appends, as the pool does
        // (AdvanceAllWindows after each fold).
        if (i % 5 == 0) stats.AdvanceWindow(t, dec);
        // Evaluate behind the cursor (fallback to full replay), at it,
        // inside the window, and far past expiry.
        for (const double t_eval :
             {t - 3.0, t, t + 0.5 * t_max, t + 2.0 * t_max}) {
          EXPECT_EQ(stats.AccumulatedBenefit(t_eval, dec),
                    stats.AccumulatedBenefitNaive(t_eval, dec))
              << "t_max=" << t_max << " enabled=" << enabled << " i=" << i;
        }
      }
      EXPECT_EQ(stats.UndecayedBenefit(), stats.UndecayedBenefitNaive());
      EXPECT_EQ(stats.LastUse(), stats.LastUseNaive());
      // Multi-tenant attribution stays exact: the per-tenant splits sum
      // the same terms the aggregate evaluation sums, per tenant.
      const double t_eval = t + 1.0;
      auto by_tenant = stats.AccumulatedBenefitByTenant(t_eval, dec);
      for (const int32_t tenant : {0, 1, 2}) {
        double naive = 0.0;
        for (const BenefitEvent& e : stats.events()) {
          if (e.tenant == tenant) naive += e.saving * dec(t_eval, e.time);
        }
        EXPECT_EQ(stats.AccumulatedBenefitForTenant(t_eval, dec, tenant),
                  naive);
        EXPECT_EQ(by_tenant[tenant], naive);
      }
    }
  }
}

TEST(FragmentStatsIncrementalTest, RandomHitStreamsMatchNaiveBitIdentically) {
  int config = 0;
  for (const double t_max : {25.0, 500.0, 5000.0}) {
    for (const bool enabled : {true, false}) {
      DecayFunction dec(DecayConfig{t_max, enabled});
      std::mt19937 rng(2000u + static_cast<uint32_t>(config++));
      std::uniform_real_distribution<double> step(0.0, 8.0);
      std::uniform_real_distribution<double> pos(0.0, 100.0);
      FragmentStats f;
      f.interval = Interval(0.0, 100.0);
      double t = 0.0;
      for (int i = 0; i < 400; ++i) {
        t += step(rng);
        const double lo = pos(rng);
        f.RecordHit(t, Interval(lo, lo + 1.0), static_cast<int32_t>(i % 3));
        if (i % 5 == 0) f.AdvanceWindow(t, dec);
        if (i % 61 == 0) {
          // Merge passes splice arbitrary (possibly unsorted) hit
          // vectors through AdoptHits; the caches must rebuild exactly.
          std::vector<FragmentHit> spliced = f.hits();
          if (spliced.size() > 1) std::swap(spliced.front(), spliced.back());
          f.AdoptHits(std::move(spliced));
        }
        for (const double t_eval :
             {t - 3.0, t, t + 0.5 * t_max, t + 2.0 * t_max}) {
          EXPECT_EQ(f.DecayedHits(t_eval, dec),
                    f.DecayedHitsNaive(t_eval, dec))
              << "t_max=" << t_max << " enabled=" << enabled << " i=" << i;
        }
      }
      EXPECT_EQ(f.LastHit(), f.LastHitNaive());
      const double t_eval = t + 1.0;
      auto by_tenant = f.DecayedHitsByTenant(t_eval, dec);
      for (const int32_t tenant : {0, 1, 2}) {
        double naive = 0.0;
        for (const FragmentHit& h : f.hits()) {
          if (h.tenant == tenant) naive += dec(t_eval, h.time);
        }
        EXPECT_EQ(f.DecayedHitsForTenant(t_eval, dec, tenant), naive);
        EXPECT_EQ(by_tenant[tenant], naive);
      }
    }
  }
}

TEST(ViewStatsIncrementalTest, ChangingTmaxInvalidatesTheCursor) {
  // The cursor is computed under one t_max; evaluating under another
  // must fall back to full replay (CursorValid checks the cutoff).
  ViewStats stats;
  DecayFunction dec_short(DecayConfig{10.0, true});
  DecayFunction dec_long(DecayConfig{1000.0, true});
  for (int i = 1; i <= 50; ++i) stats.RecordUse(i, 1.0);
  stats.AdvanceWindow(40.0, dec_short);  // entries < 30 expired under 10
  EXPECT_EQ(stats.AccumulatedBenefit(40.0, dec_long),
            stats.AccumulatedBenefitNaive(40.0, dec_long));
  EXPECT_EQ(stats.AccumulatedBenefit(40.0, dec_short),
            stats.AccumulatedBenefitNaive(40.0, dec_short));
  // Re-advancing under the new cutoff rebuilds the cursor from scratch.
  stats.AdvanceWindow(40.0, dec_long);
  EXPECT_EQ(stats.AccumulatedBenefit(40.0, dec_long),
            stats.AccumulatedBenefitNaive(40.0, dec_long));
}

TEST(FragmentStatsIncrementalTest, AdoptAfterAdvanceResetsTheCursor) {
  DecayFunction dec(DecayConfig{10.0, true});
  FragmentStats f;
  for (int i = 1; i <= 30; ++i) f.RecordHit(i);
  f.AdvanceWindow(25.0, dec);
  // Adopt an unsorted list whose old entries would be hidden behind a
  // stale cursor if AdoptHits failed to reset it.
  std::vector<FragmentHit> replacement = f.hits();
  std::reverse(replacement.begin(), replacement.end());
  f.AdoptHits(std::move(replacement));
  EXPECT_EQ(f.DecayedHits(25.0, dec), f.DecayedHitsNaive(25.0, dec));
  EXPECT_EQ(f.LastHit(), f.LastHitNaive());
}

TEST(PolicyTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(StrategyKind::kHive), "H");
  EXPECT_STREQ(StrategyName(StrategyKind::kNoPartition), "NP");
  EXPECT_STREQ(StrategyName(StrategyKind::kEquiDepth), "E");
  EXPECT_STREQ(StrategyName(StrategyKind::kNoRefine), "NR");
  EXPECT_STREQ(StrategyName(StrategyKind::kDeepSea), "DS");
}

TEST(PolicyTest, DeepSeaViewValueUsesDecay) {
  DecayFunction dec(DecayConfig{1000.0, true});
  ViewStats stats;
  stats.creation_cost = 100;
  stats.size_bytes = 100;
  stats.RecordUse(50, 10);
  const double v_now = ViewValue(ValueModel::kDeepSea, stats, 100, dec);
  const double v_later = ViewValue(ValueModel::kDeepSea, stats, 500, dec);
  EXPECT_GT(v_now, v_later);
}

TEST(PolicyTest, NectarIgnoresAccumulatedBenefit) {
  DecayFunction dec;
  ViewStats poor, rich;
  poor.creation_cost = rich.creation_cost = 100;
  poor.size_bytes = rich.size_bytes = 100;
  poor.RecordUse(50, 1);      // tiny saving
  rich.RecordUse(50, 10000);  // huge saving
  EXPECT_DOUBLE_EQ(ViewValue(ValueModel::kNectar, poor, 100, dec),
                   ViewValue(ValueModel::kNectar, rich, 100, dec));
  EXPECT_LT(ViewValue(ValueModel::kNectarPlus, poor, 100, dec),
            ViewValue(ValueModel::kNectarPlus, rich, 100, dec));
}

TEST(PolicyTest, NectarValueDropsWithIdleTime) {
  DecayFunction dec;
  ViewStats stats;
  stats.creation_cost = 100;
  stats.size_bytes = 100;
  stats.RecordUse(10, 100);
  EXPECT_GT(ViewValue(ValueModel::kNectar, stats, 11, dec),
            ViewValue(ValueModel::kNectar, stats, 1000, dec));
  EXPECT_GT(ViewValue(ValueModel::kNectarPlus, stats, 11, dec),
            ViewValue(ValueModel::kNectarPlus, stats, 1000, dec));
}

TEST(PolicyTest, FilterBenefitModelSpecific) {
  DecayFunction dec(DecayConfig{10.0, true});
  ViewStats stats;
  stats.RecordUse(5, 100);
  // Old event: decayed filter sees ~0, undecayed sees 100.
  EXPECT_DOUBLE_EQ(ViewBenefitForFilter(ValueModel::kDeepSea, stats, 1000, dec),
                   0.0);
  EXPECT_DOUBLE_EQ(ViewBenefitForFilter(ValueModel::kNectarPlus, stats, 1000, dec),
                   100.0);
}

TEST(PolicyTest, FragmentValueModels) {
  DecayFunction dec;
  FragmentStats f;
  f.size_bytes = 100;
  f.RecordHit(90);
  const double ds = FragmentValue(ValueModel::kDeepSea, f, 1000, 500, 100, dec);
  const double n = FragmentValue(ValueModel::kNectar, f, 1000, 500, 100, dec);
  const double np = FragmentValue(ValueModel::kNectarPlus, f, 1000, 500, 100, dec);
  EXPECT_GT(ds, 0.0);
  EXPECT_GT(n, 0.0);
  EXPECT_GT(np, 0.0);
}

}  // namespace
}  // namespace deepsea
