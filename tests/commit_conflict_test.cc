// Conflict-matrix tests for the sharded commit path.
//
// Three layers, bottom up:
//  * FootprintsConflict — the pure read-vs-write intersection rules
//    (granularities, wildcards, the asymmetric structure rule);
//  * PoolManager — read-set validation against the bounded epoch table
//    and the in-flight registry (genuine vs spurious verdicts, the
//    PR 4 false-positive regression, ring overflow), plus the
//    ordered-multi-lock deadlock test for the commit shards;
//  * DeepSeaEngine — single-tenant and sequentially interleaved
//    multi-tenant runs never replan (determinism contract).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "multitenant_harness.h"

#include "core/commit_footprint.h"
#include "core/engine.h"
#include "core/planning_delta.h"
#include "core/pool_manager.h"
#include "core/shared_pool.h"
#include "rewrite/filter_tree.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

CommitFootprint ViewRead(const std::string& id) {
  CommitFootprint fp;
  fp.AddView(id);
  return fp;
}

CommitFootprint FragmentRead(const std::string& id, const std::string& attr,
                             const Interval& range) {
  CommitFootprint fp;
  fp.AddFragment(id, attr, range);
  return fp;
}

// --- FootprintsConflict: the intersection matrix ---------------------

TEST(FootprintsConflictTest, DisjointViewsDoNotConflict) {
  EXPECT_FALSE(FootprintsConflict(ViewRead("v1"), ViewRead("v2")));
  EXPECT_TRUE(FootprintsConflict(ViewRead("v1"), ViewRead("v1")));
}

TEST(FootprintsConflictTest, SameViewDisjointFragmentsDoNotConflict) {
  const CommitFootprint read = FragmentRead("v1", "item_sk", Interval(0, 10));
  EXPECT_FALSE(FootprintsConflict(
      read, FragmentRead("v1", "item_sk", Interval(20, 30))));
  // A different partition attribute of the same view commutes too.
  EXPECT_FALSE(
      FootprintsConflict(read, FragmentRead("v1", "ss_date", Interval(0, 10))));
  // ...and so does the same range on a different view.
  EXPECT_FALSE(
      FootprintsConflict(read, FragmentRead("v2", "item_sk", Interval(0, 10))));
}

TEST(FootprintsConflictTest, OverlappingFragmentsConflict) {
  const CommitFootprint read = FragmentRead("v1", "item_sk", Interval(0, 10));
  EXPECT_TRUE(FootprintsConflict(
      read, FragmentRead("v1", "item_sk", Interval(5, 15))));
  // Shared endpoint: closed intervals touch, which counts as overlap.
  EXPECT_TRUE(FootprintsConflict(
      read, FragmentRead("v1", "item_sk", Interval(10, 20))));
}

TEST(FootprintsConflictTest, CatalogEntryOverlap) {
  CommitFootprint probe;
  probe.AddCatalogSig("sig-a");
  CommitFootprint create_a;
  create_a.AddCatalogSig("sig-a");
  CommitFootprint create_b;
  create_b.AddCatalogSig("sig-b");
  // A foreign commit creating a signature this plan probed invalidates
  // it; creating a signature it never probed does not.
  EXPECT_TRUE(FootprintsConflict(probe, create_a));
  EXPECT_FALSE(FootprintsConflict(probe, create_b));

  // Two concurrent view creators always collide on the id counter —
  // that is what makes "v<N>" id prediction safe.
  CommitFootprint counter;
  counter.catalog_counter = true;
  EXPECT_TRUE(FootprintsConflict(counter, counter));
  EXPECT_FALSE(FootprintsConflict(counter, create_b));
}

PlanSignature RangeSig(const std::string& relation, double lo, double hi) {
  PlanSignature sig;
  sig.relations = {relation};
  ColumnRange range;
  range.column = relation + ".k";
  range.lo = lo;
  range.hi = hi;
  sig.ranges[range.column] = range;
  // The range column is exported: a wider view can compensate a
  // narrower probe with a selection on it (subsumption condition 6).
  sig.output_columns.insert(range.column);
  return sig;
}

std::shared_ptr<const PlanSignature> Shared(PlanSignature sig) {
  return std::make_shared<const PlanSignature>(std::move(sig));
}

TEST(FootprintsConflictTest, IndexInsertConflictsAtSubsumptionGranularity) {
  // The matcher probed the rewrite index with a [10,20] subplan.
  CommitFootprint probe;
  probe.AddIndexProbe(Shared(RangeSig("fact", 10, 20)));

  // A foreign commit inserting the SAME signature invalidates the
  // plan (the probe missed a view that now exists)...
  CommitFootprint same;
  same.AddIndexInsert(Shared(RangeSig("fact", 10, 20)));
  EXPECT_TRUE(FootprintsConflict(probe, same));

  // ...and so does a strictly WIDER view: [0,100] subsumes [10,20],
  // so the new view could have answered the probed subplan.
  CommitFootprint wider;
  wider.AddIndexInsert(Shared(RangeSig("fact", 0, 100)));
  EXPECT_TRUE(FootprintsConflict(probe, wider));

  // A NARROWER view cannot answer the probe: it commutes. This is the
  // case that lets signature-disjoint creators commit sharded.
  CommitFootprint narrower;
  narrower.AddIndexInsert(Shared(RangeSig("fact", 12, 15)));
  EXPECT_FALSE(FootprintsConflict(probe, narrower));

  // Different relation class: no subsumption, commutes.
  CommitFootprint elsewhere;
  elsewhere.AddIndexInsert(Shared(RangeSig("dim", 0, 100)));
  EXPECT_FALSE(FootprintsConflict(probe, elsewhere));

  // An insert invalidates nobody who never probed the index.
  EXPECT_FALSE(FootprintsConflict(ViewRead("v1"), wider));
}

TEST(FootprintsConflictTest, IndexProbesVsStructuralAll) {
  // A state load / merge pass still publishes `all`: it must invalidate
  // index-probing plans (the index may have been rebuilt wholesale),
  // and an `all` reader must see an insert-only write.
  CommitFootprint probe;
  probe.AddIndexProbe(Shared(RangeSig("fact", 10, 20)));
  CommitFootprint all;
  all.all = true;
  EXPECT_TRUE(FootprintsConflict(probe, all));

  CommitFootprint insert_only;
  insert_only.AddIndexInsert(Shared(RangeSig("fact", 10, 20)));
  EXPECT_TRUE(FootprintsConflict(all, insert_only));
}

TEST(FootprintsConflictTest, ReservedCreatorsCommuteOnTheCounter) {
  // A creator that leased its ids from a ViewIdReservation WRITES the
  // shared counter (the fold advances it) but never READS it — its
  // read set carries only the signatures it probed. Two such creators
  // with disjoint signatures therefore commute...
  CommitFootprint creator_write;
  creator_write.catalog_counter = true;
  creator_write.AddCatalogSig("sig-a");
  CommitFootprint other_creator_read;
  other_creator_read.AddCatalogSig("sig-b");
  EXPECT_FALSE(FootprintsConflict(other_creator_read, creator_write));

  // ...while a legacy id-predicting plan (or a knapsack that read pool
  // membership) DID read the counter and conflicts with any creator.
  CommitFootprint legacy_read;
  legacy_read.catalog_counter = true;
  EXPECT_TRUE(FootprintsConflict(legacy_read, creator_write));
}

TEST(FootprintsConflictTest, StructuralAllConflictsWithEveryRead) {
  CommitFootprint all;
  all.all = true;
  EXPECT_TRUE(FootprintsConflict(ViewRead("v1"), all));
  EXPECT_TRUE(
      FootprintsConflict(FragmentRead("v9", "x", Interval(0, 1)), all));
  // An `all` WRITE is conservative: it invalidates every plan, even
  // one that recorded no reads. An `all` READER conflicts with any
  // non-empty write but not with a commit that published nothing.
  EXPECT_TRUE(FootprintsConflict(CommitFootprint{}, all));
  EXPECT_TRUE(FootprintsConflict(all, ViewRead("v1")));
  EXPECT_FALSE(FootprintsConflict(all, CommitFootprint{}));
}

TEST(FootprintsConflictTest, StructuralMergeEvictWritesHitFragmentReaders) {
  // Merge/evict commits write partition *structure*: a fragment reader
  // of that partition saw a fragment list the commit changed.
  CommitFootprint structure_write;
  structure_write.AddPartition("v1", "item_sk");
  EXPECT_TRUE(FootprintsConflict(
      FragmentRead("v1", "item_sk", Interval(0, 10)), structure_write));
  EXPECT_FALSE(FootprintsConflict(
      FragmentRead("v1", "ss_date", Interval(0, 10)), structure_write));

  // EvictWholeView writes with the "" wildcard: every partition of the
  // view, any attribute.
  CommitFootprint wildcard_write;
  wildcard_write.AddPartition("v1", "");
  EXPECT_TRUE(FootprintsConflict(
      FragmentRead("v1", "ss_date", Interval(0, 10)), wildcard_write));
  EXPECT_FALSE(FootprintsConflict(
      FragmentRead("v2", "ss_date", Interval(0, 10)), wildcard_write));
}

TEST(FootprintsConflictTest, StructureReadCommutesWithPlainFragmentWrite) {
  // The asymmetric rule: appending hits to an existing fragment leaves
  // the structure a partition reader depended on intact...
  CommitFootprint structure_read;
  structure_read.AddPartition("v1", "item_sk");
  EXPECT_FALSE(FootprintsConflict(
      structure_read, FragmentRead("v1", "item_sk", Interval(0, 10))));
  // ...but a fragment reader IS invalidated by a structure write
  // (tested above), and a structure reader by a structure write.
  CommitFootprint structure_write;
  structure_write.AddPartition("v1", "item_sk");
  EXPECT_TRUE(FootprintsConflict(structure_read, structure_write));
}

// --- PoolManager: validation against the epoch table -----------------

class CommitValidationTest : public ::testing::Test {
 protected:
  CommitValidationTest() : shared_(&catalog_, EngineOptions()) {}

  PoolManager* pool() { return shared_.pool(); }

  /// One exclusive commit that publishes exactly `write_fp`.
  void PublishWrite(const CommitFootprint& write_fp) {
    CommitGuard commit = pool()->BeginCommit();
    pool()->SetCommitFootprint(commit, write_fp);
  }

  Catalog catalog_;
  SharedPool shared_;
};

TEST_F(CommitValidationTest, DisjointForeignCommitNoLongerForcesReplan) {
  // The PR 4 false positive: under commit-epoch validation ANY foreign
  // commit invalidated every in-flight plan. Read-set validation must
  // keep a plan whose footprint the foreign write never touched.
  const uint64_t read_epoch = pool()->read_epoch();
  PublishWrite(ViewRead("vA"));

  CommitGuard commit = pool()->BeginCommit();
  bool genuine = true;
  EXPECT_TRUE(
      pool()->ValidateReadSet(commit, ViewRead("vB"), read_epoch, &genuine));
  EXPECT_FALSE(genuine);
  pool()->SetCommitFootprint(commit, CommitFootprint{});
}

TEST_F(CommitValidationTest, OverlappingForeignCommitIsAGenuineConflict) {
  const uint64_t read_epoch = pool()->read_epoch();
  PublishWrite(FragmentRead("vA", "item_sk", Interval(0, 100)));

  CommitGuard commit = pool()->BeginCommit();
  bool genuine = false;
  EXPECT_FALSE(pool()->ValidateReadSet(
      commit, FragmentRead("vA", "item_sk", Interval(50, 60)), read_epoch,
      &genuine));
  EXPECT_TRUE(genuine);
  // A commit published BEFORE the plan's read epoch is invisible: the
  // plan read the state it produced.
  bool genuine2 = true;
  EXPECT_TRUE(pool()->ValidateReadSet(
      commit, FragmentRead("vA", "item_sk", Interval(50, 60)),
      pool()->read_epoch(), &genuine2));
  pool()->SetCommitFootprint(commit, CommitFootprint{});
}

TEST_F(CommitValidationTest, EpochRingOverflowInvalidatesSpuriously) {
  const uint64_t stale_epoch = pool()->read_epoch();
  // Push enough publishes through the bounded ring that it can no
  // longer prove what happened right after stale_epoch.
  for (int i = 0; i < 200; ++i) PublishWrite(ViewRead("other"));

  CommitGuard commit = pool()->BeginCommit();
  bool genuine = true;
  EXPECT_FALSE(
      pool()->ValidateReadSet(commit, ViewRead("mine"), stale_epoch, &genuine));
  EXPECT_FALSE(genuine) << "coverage loss must report spurious, not genuine";
  // A fresh epoch is fully covered: same read set, no conflict.
  EXPECT_TRUE(pool()->ValidateReadSet(commit, ViewRead("mine"),
                                      pool()->read_epoch(), &genuine));
  pool()->SetCommitFootprint(commit, CommitFootprint{});
}

TEST_F(CommitValidationTest, ShardedCommitsPublishOnRelease) {
  const uint64_t read_epoch = pool()->read_epoch();
  bool genuine = true;
  {
    CommitGuard commit = pool()->TryBeginShardedCommit(
        nullptr, "", 0, FragmentRead("v1", "item_sk", Interval(0, 10)),
        CommitFootprint{}, read_epoch, &genuine);
    ASSERT_TRUE(commit.held());
  }
  EXPECT_GT(pool()->read_epoch(), read_epoch);

  // A plan that read the published range must now fail validation.
  CommitGuard probe = pool()->BeginCommit();
  EXPECT_FALSE(pool()->ValidateReadSet(
      probe, FragmentRead("v1", "item_sk", Interval(5, 6)), read_epoch,
      &genuine));
  EXPECT_TRUE(genuine);
  pool()->SetCommitFootprint(probe, CommitFootprint{});
}

TEST_F(CommitValidationTest, InFlightShardedCommitConflicts) {
  // Thread A holds a sharded commit writing v1; the main thread's
  // sharded attempt reads v1 and must be rejected as a genuine
  // conflict even though nothing has been published yet.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::thread holder([&] {
    bool genuine = true;
    CommitGuard commit = pool()->TryBeginShardedCommit(
        nullptr, "a", 0, ViewRead("v1"), CommitFootprint{},
        pool()->read_epoch(), &genuine);
    ASSERT_TRUE(commit.held());
    {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  bool genuine = false;
  CommitGuard attempt = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, ViewRead("v2"), ViewRead("v1"), pool()->read_epoch(),
      &genuine);
  EXPECT_FALSE(attempt.held());
  EXPECT_TRUE(genuine);

  // Disjoint read set: commits concurrently alongside the in-flight one.
  CommitGuard ok = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, ViewRead("v2"), ViewRead("v3"), pool()->read_epoch(),
      &genuine);
  EXPECT_TRUE(ok.held());
  ok.Release();

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
}

TEST_F(CommitValidationTest, ShardStatsCountAcquisitions) {
  bool genuine = true;
  {
    CommitGuard commit = pool()->TryBeginShardedCommit(
        nullptr, "", 0, ViewRead("v1"), CommitFootprint{},
        pool()->read_epoch(), &genuine);
    ASSERT_TRUE(commit.held());
  }
  const auto stats = pool()->commit_shard_stats();
  ASSERT_EQ(stats.size(), static_cast<size_t>(PoolManager::kCommitShards));
  const int shard = PoolManager::ShardOf("v1");
  ASSERT_GE(shard, 0);
  ASSERT_LT(shard, PoolManager::kCommitShards);
  EXPECT_GE(stats[static_cast<size_t>(shard)].acquisitions, 1u);
  EXPECT_GE(stats[static_cast<size_t>(shard)].held_seconds, 0.0);
}

TEST_F(CommitValidationTest, StructuralAllFootprintEscalatesToExclusive) {
  // An `all` write footprint has no shard set; running it under IX
  // would publish `all` with no serialization at all. The sharded
  // entry must refuse it (in release builds too, not via a debug-only
  // assert) so the caller escalates to BeginCommit.
  CommitFootprint all;
  all.all = true;
  bool genuine = false;
  CommitGuard guard = pool()->TryBeginShardedCommit(
      nullptr, "", 0, all, CommitFootprint{}, pool()->read_epoch(), &genuine);
  EXPECT_FALSE(guard.held());
  EXPECT_TRUE(genuine);
  // The refusal left no lock state behind: the exclusive path enters.
  CommitGuard x = pool()->BeginCommit();
  EXPECT_TRUE(x.held());
  pool()->SetCommitFootprint(x, CommitFootprint{});
}

TEST_F(CommitValidationTest, ConcurrentReservedCreatorsBothEnterSharded) {
  // Two creators whose ids came from ViewIdReservations: both WRITE
  // the counter and their own signature, neither READS the counter.
  // The second must enter while the first is still in flight — this is
  // the property that lets cold-range traffic commit sharded.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::thread holder([&] {
    CommitFootprint write_a;
    write_a.catalog_counter = true;
    write_a.AddCatalogSig("sig-a");
    write_a.AddView("va");
    bool genuine = true;
    CommitGuard commit = pool()->TryBeginShardedCommit(
        nullptr, "a", 0, std::move(write_a), ViewRead("sig-a-probe"),
        pool()->read_epoch(), &genuine);
    ASSERT_TRUE(commit.held());
    {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  CommitFootprint write_b;
  write_b.catalog_counter = true;
  write_b.AddCatalogSig("sig-b");
  write_b.AddView("vb");
  CommitFootprint read_b;
  read_b.AddCatalogSig("sig-b");
  bool genuine = false;
  CommitGuard second = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, std::move(write_b), std::move(read_b),
      pool()->read_epoch(), &genuine);
  EXPECT_TRUE(second.held());
  second.Release();

  // A legacy plan that READ the counter is rejected while creator A's
  // counter write is in flight — a genuine conflict, not coverage loss.
  CommitFootprint legacy_read;
  legacy_read.catalog_counter = true;
  CommitGuard legacy = pool()->TryBeginShardedCommit(
      nullptr, "c", 0, ViewRead("vc"), std::move(legacy_read),
      pool()->read_epoch(), &genuine);
  EXPECT_FALSE(legacy.held());
  EXPECT_TRUE(genuine);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
}

// --- view-id reservation: block leasing --------------------------------

TEST(ViewIdReservationTest, ExhaustedBlockLeasesAFreshDisjointBlock) {
  std::atomic<int64_t> counter{0};
  ViewIdReservation a(&counter);
  ViewIdReservation b(&counter);

  // a drains its first block; b leases the next one concurrently.
  std::set<std::string> ids;
  for (int64_t i = 0; i < ViewIdReservation::kBlockSize; ++i) {
    ids.insert(a.NextPlaceholder());
  }
  EXPECT_EQ(a.remaining(), 0);
  for (int64_t i = 0; i < ViewIdReservation::kBlockSize; ++i) {
    ids.insert(b.NextPlaceholder());
  }

  // Exhaustion: a's next lease skips b's block entirely.
  ids.insert(a.NextPlaceholder());
  EXPECT_EQ(a.remaining(), ViewIdReservation::kBlockSize - 1);

  // Every id is distinct, every id is in the placeholder namespace
  // (disjoint from the catalog's "v<N>" ids), and the shared counter
  // advanced exactly one block per lease.
  EXPECT_EQ(ids.size(), static_cast<size_t>(2 * ViewIdReservation::kBlockSize + 1));
  for (const std::string& id : ids) {
    EXPECT_TRUE(ViewIdReservation::IsPlaceholder(id)) << id;
  }
  EXPECT_FALSE(ViewIdReservation::IsPlaceholder("v7"));
  EXPECT_EQ(counter.load(), 3 * ViewIdReservation::kBlockSize);
}

// --- budget headroom: concurrent materializations vs pool_limit ------

class BudgetValidationTest : public ::testing::Test {
 protected:
  static EngineOptions Limited() {
    EngineOptions o;
    o.pool_limit_bytes = 1000.0;
    return o;
  }
  BudgetValidationTest() : shared_(&catalog_, Limited()) {}

  PoolManager* pool() { return shared_.pool(); }

  Catalog catalog_;
  SharedPool shared_;
};

TEST_F(BudgetValidationTest, ConcurrentClaimsCannotOvershootBudget) {
  // Pool occupancy is not part of any read footprint, so two plans with
  // disjoint footprints and uncontended knapsacks would each validate
  // against the old occupancy and jointly materialize past the budget.
  // The admitted-bytes claim closes that: a sharded commit only enters
  // when its claim fits next to every in-flight commit's claim.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::thread holder([&] {
    bool genuine = true;
    CommitGuard commit = pool()->TryBeginShardedCommit(
        nullptr, "a", 0, ViewRead("v1"), CommitFootprint{},
        pool()->read_epoch(), &genuine, /*admitted_bytes=*/600.0);
    ASSERT_TRUE(commit.held());
    {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // 600 in flight + 600 claimed > 1000: rejected as a genuine conflict
  // even though the footprints are disjoint and nothing was published.
  bool genuine = false;
  CommitGuard over = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, ViewRead("v2"), CommitFootprint{},
      pool()->read_epoch(), &genuine, /*admitted_bytes=*/600.0);
  EXPECT_FALSE(over.held());
  EXPECT_TRUE(genuine);

  // 600 + 300 <= 1000: fits alongside the in-flight claim.
  CommitGuard fits = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, ViewRead("v2"), CommitFootprint{},
      pool()->read_epoch(), &genuine, /*admitted_bytes=*/300.0);
  EXPECT_TRUE(fits.held());
  fits.Release();

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();

  // With the claim retired (and nothing actually materialized) the
  // 600-byte claim fits again.
  CommitGuard after = pool()->TryBeginShardedCommit(
      nullptr, "b", 0, ViewRead("v2"), CommitFootprint{},
      pool()->read_epoch(), &genuine, /*admitted_bytes=*/600.0);
  EXPECT_TRUE(after.held());
}

TEST_F(BudgetValidationTest, ExclusiveValidationChecksHeadroomToo) {
  // The structural path revalidates with the same budget rule (a
  // non-replanned X commit also planned against possibly-stale
  // occupancy).
  CommitGuard x = pool()->BeginCommit();
  bool genuine = false;
  EXPECT_FALSE(pool()->ValidateReadSet(x, CommitFootprint{},
                                       pool()->read_epoch(), &genuine,
                                       /*admitted_bytes=*/2000.0));
  EXPECT_TRUE(genuine);
  EXPECT_TRUE(pool()->ValidateReadSet(x, CommitFootprint{},
                                      pool()->read_epoch(), &genuine,
                                      /*admitted_bytes=*/500.0));
  pool()->SetCommitFootprint(x, CommitFootprint{});
}

// --- fold safety: read-only shadows of foreign-mutated bases ---------

PlanSignature SigNamed(const std::string& relation) {
  PlanSignature sig;
  sig.relations = {relation};
  return sig;
}

TEST(PlanningDeltaFoldTest, ReadOnlyShadowSurvivesForeignBaseGrowth) {
  // A sharded commit folds its delta while foreign commits may already
  // have changed views the plan only soft-read (those reads were
  // dropped, so validation let the plan through). The fold must judge
  // shadow dirtiness against the creation-time snapshot — never the
  // live base: comparing against the base would (a) race, (b) dangle
  // once the base's fragment vector reallocated, and (c) classify the
  // read-only shadow dirty and overwrite the foreign commit's values
  // with the plan's stale copy.
  ViewCatalog views;
  Catalog catalog;
  FilterTree index;
  ViewInfo* v = views.Track(Scan("a"), SigNamed("a"));
  PartitionState* part = v->EnsurePartition("a.x", Interval(0, 1000));
  part->Track(Interval(0, 50), 10.0);
  part->Track(Interval(50, 100), 20.0);

  PlanningDelta delta(catalog, &views, /*t_now=*/1.0);
  PartitionState* shadow = delta.Partition(v, "a.x");
  ASSERT_NE(shadow, nullptr);
  ASSERT_NE(shadow, part);  // shared view: reads go through a shadow

  // Foreign commit: grow the base far past its capacity (reallocating
  // the fragment vector, so every base pointer the shadow captured
  // dangles) and resize a fragment the shadow copied.
  for (int i = 0; i < 64; ++i) {
    part->Track(Interval(100 + 10 * i, 100 + 10 * (i + 1)), 1.0);
  }
  part->Find(Interval(0, 50))->size_bytes = 777.0;

  delta.Fold(&views, &catalog, &index);

  // The read-only shadow was skipped: foreign growth and the foreign
  // resize survive the fold untouched.
  EXPECT_EQ(part->fragments.size(), 66u);
  EXPECT_DOUBLE_EQ(part->Find(Interval(0, 50))->size_bytes, 777.0);
  // The remap still resolves the shadow to its real partition (without
  // walking the foreign view's partition map).
  EXPECT_EQ(delta.RealPartition(shadow), part);
}

// --- pool lock: waiting IX bars new shared entrants ------------------

TEST(PoolLockTest, WaitingIntentBlocksNewSharedEntrants) {
  // A sharded commit waiting for shared planners to drain must not be
  // starved by a continuous stream of NEW planners: once an IX waiter
  // is registered, fresh S entrants hold back until it got through.
  PoolLock lock;
  lock.LockShared();

  std::atomic<bool> intent_acquired{false};
  std::thread ix([&] {
    lock.LockIntent();
    intent_acquired.store(true);
    lock.UnlockIntent();
  });
  // Let the IX waiter park on the held S lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(intent_acquired.load());

  std::atomic<bool> shared_acquired{false};
  std::thread s([&] {
    lock.LockShared();
    shared_acquired.store(true);
    lock.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Pre-fix, the new S entrant would have been admitted alongside the
  // original holder while the IX waiter kept waiting.
  EXPECT_FALSE(shared_acquired.load());

  lock.UnlockShared();
  ix.join();
  s.join();
  EXPECT_TRUE(intent_acquired.load());
  EXPECT_TRUE(shared_acquired.load());
}

// --- lock order: overlapping shard sets, opposite arrival order ------

TEST_F(CommitValidationTest, OpposingShardOrdersDoNotDeadlock) {
  // Two threads repeatedly take sharded commits whose write footprints
  // list overlapping view groups in OPPOSITE order. Acquisition is by
  // ascending shard index regardless of footprint order, so the runs
  // serialize on the shared shards instead of deadlocking. (A
  // footprint-order acquisition would deadlock this test in the first
  // few iterations; the ctest timeout is the failure detector.)
  std::vector<std::string> views;
  std::set<int> shards;
  for (int i = 0; shards.size() < 6; ++i) {
    const std::string id = "w" + std::to_string(i);
    if (shards.insert(PoolManager::ShardOf(id)).second) views.push_back(id);
  }
  // Overlapping subsets: {0..3} and {2..5}, reversed for thread B.
  std::vector<std::string> set_a(views.begin(), views.begin() + 4);
  std::vector<std::string> set_b(views.begin() + 2, views.end());
  std::vector<std::string> set_b_rev(set_b.rbegin(), set_b.rend());

  constexpr int kIterations = 300;
  std::atomic<int> commits{0};
  auto worker = [&](const std::vector<std::string>& ids) {
    for (int i = 0; i < kIterations; ++i) {
      CommitFootprint write_fp;
      for (const std::string& id : ids) write_fp.AddView(id);
      bool genuine = true;
      CommitGuard commit = pool()->TryBeginShardedCommit(
          nullptr, "", 0, std::move(write_fp), CommitFootprint{},
          pool()->read_epoch(), &genuine);
      if (commit.held()) commits.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread ta(worker, set_a);
  std::thread tb(worker, set_b_rev);
  ta.join();
  tb.join();
  // Empty read sets never conflict, so every attempt must have entered.
  EXPECT_EQ(commits.load(), 2 * kIterations);
}

// --- engine determinism: no replans without real concurrency ---------

BigBenchDataset::Options SmallData() {
  BigBenchDataset::Options o;
  o.total_bytes = 100e9;
  o.sample_rows_per_fact = 256;
  o.sample_rows_per_dim = 64;
  o.seed = 7;
  SdssTraceModel sdss(SdssTraceModel::Config{}, 2017);
  o.item_sk_distribution = sdss.AccessDensity(420);
  return o;
}

EngineOptions TestOptions() {
  EngineOptions o;
  o.strategy = StrategyKind::kDeepSea;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  o.max_fragment_fraction = 0.1;
  return o;
}

TEST(EngineReplanTest, SingleTenantNeverReplans) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &catalog).ok());
  SharedPool shared(&catalog, TestOptions());
  DeepSeaEngine engine(&catalog, &shared, "solo");
  for (const PlanPtr& plan : mt::BuildPlans(mt::SdssTenantWorkload(60, 31))) {
    ASSERT_TRUE(engine.ProcessQuery(plan).ok());
  }
  EXPECT_EQ(engine.totals().replans, 0);
  EXPECT_EQ(engine.totals().replans_conflict, 0);
  EXPECT_EQ(engine.totals().replans_spurious, 0);
}

TEST(EngineReplanTest, SequentialInterleavingNeverReplans) {
  // Two tenants strictly alternating on ONE thread: every plan is
  // validated at the epoch it was read at, with no commit in between,
  // so even overlapping workloads must never replan.
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &catalog).ok());
  SharedPool shared(&catalog, TestOptions());
  DeepSeaEngine alice(&catalog, &shared, "alice");
  DeepSeaEngine bob(&catalog, &shared, "bob");
  const auto plans_a = mt::BuildPlans(mt::SdssTenantWorkload(40, 11));
  const auto plans_b = mt::BuildPlans(mt::SdssTenantWorkload(40, 12));
  for (size_t i = 0; i < plans_a.size(); ++i) {
    ASSERT_TRUE(alice.ProcessQuery(plans_a[i]).ok());
    ASSERT_TRUE(bob.ProcessQuery(plans_b[i]).ok());
  }
  EXPECT_EQ(alice.totals().replans, 0);
  EXPECT_EQ(bob.totals().replans, 0);
}

// --- schedule fuzz: every query a creator ----------------------------

/// Tenant t's i-th query carries a range no other query in the run
/// ever uses, so every query tracks fresh candidate views and every
/// commit is structural. This is the worst case for view-id
/// reservation: placeholder blocks are leased concurrently across
/// engines, and the fold must assign the final "v<N>" ids in commit
/// order — the fingerprint/report comparison against the sequential
/// replay pins exactly that (created_views is part of every report).
std::vector<PlanPtr> FreshRangePlans(int tenant, int queries) {
  const auto names = BigBenchTemplates::Names();
  std::vector<PlanPtr> out;
  out.reserve(static_cast<size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    const double lo = 50000.0 * tenant + 700.0 * i;
    const std::string& name =
        names[static_cast<size_t>(tenant + i) % names.size()];
    auto plan = BigBenchTemplates::Build(name, lo, lo + 450.0);
    EXPECT_TRUE(plan.ok()) << name;
    out.push_back(*plan);
  }
  return out;
}

TEST(CreatorScheduleFuzzTest, SeededSchedulesOfFreshCreatorsMatchReplay) {
  const std::vector<std::string> tenants = {"c0", "c1", "c2"};
  constexpr int kQueriesEach = 12;
  std::vector<std::vector<PlanPtr>> plans;
  for (int t = 0; t < 3; ++t) plans.push_back(FreshRangePlans(t, kQueriesEach));
  const std::vector<int> per_tenant(3, kQueriesEach);

  for (uint64_t seed : {5u, 23u}) {
    const std::vector<int> schedule = mt::RandomSchedule(per_tenant, seed);

    Catalog seq_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &seq_catalog).ok());
    const mt::ScheduledRunResult seq = mt::RunScheduled(
        &seq_catalog, TestOptions(), tenants, plans, schedule,
        /*threaded=*/false);

    Catalog thr_catalog;
    ASSERT_TRUE(BigBenchDataset::Generate(SmallData(), &thr_catalog).ok());
    const mt::ScheduledRunResult thr = mt::RunScheduled(
        &thr_catalog, TestOptions(), tenants, plans, schedule,
        /*threaded=*/true);

    EXPECT_EQ(seq.fingerprint, thr.fingerprint) << "seed " << seed;
    ASSERT_EQ(seq.reports.size(), thr.reports.size());
    for (size_t t = 0; t < seq.reports.size(); ++t) {
      ASSERT_EQ(seq.reports[t].size(), thr.reports[t].size()) << tenants[t];
      for (size_t i = 0; i < seq.reports[t].size(); ++i) {
        EXPECT_EQ(seq.reports[t][i], thr.reports[t][i])
            << tenants[t] << " query " << i << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace deepsea
