#include <cmath>
#include "core/candidates.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace deepsea {
namespace {

bool HasInterval(const std::vector<Interval>& list, const Interval& iv) {
  return std::find(list.begin(), list.end(), iv) != list.end();
}

// Paper Example 3: partition {[0,10], (10,20], (20,30]}, query [5,25].
TEST(PartitionCandidatesTest, PaperExampleThree) {
  const std::vector<Interval> existing = {Interval(0, 10),
                                          Interval::OpenClosed(10, 20),
                                          Interval::OpenClosed(20, 30)};
  const auto cands = GeneratePartitionCandidates(existing, Interval(5, 25));
  // Case 4 on [0,10]: [0,5) and [5,10]. Case 2 on (10,20]: nothing.
  // Case 3 on (20,30]: (20,25] and (25,30].
  EXPECT_TRUE(HasInterval(cands, Interval::ClosedOpen(0, 5)));
  EXPECT_TRUE(HasInterval(cands, Interval(5, 10)));
  EXPECT_TRUE(HasInterval(cands, Interval::OpenClosed(20, 25)));
  EXPECT_TRUE(HasInterval(cands, Interval::OpenClosed(25, 30)));
  EXPECT_EQ(cands.size(), 4u);
}

TEST(PartitionCandidatesTest, DisjointProducesNothing) {
  const auto cands =
      GeneratePartitionCandidates({Interval(0, 10)}, Interval(20, 30));
  EXPECT_TRUE(cands.empty());
}

TEST(PartitionCandidatesTest, ContainedFragmentProducesNothing) {
  // Query covers the fragment entirely (case 2).
  const auto cands =
      GeneratePartitionCandidates({Interval(5, 10)}, Interval(0, 20));
  EXPECT_TRUE(cands.empty());
}

TEST(PartitionCandidatesTest, QueryInsideFragmentThreePieces) {
  // Case 5: [l', l), [l, u], (u, u'].
  const auto cands =
      GeneratePartitionCandidates({Interval(0, 100)}, Interval(40, 60));
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_TRUE(HasInterval(cands, Interval::ClosedOpen(0, 40)));
  EXPECT_TRUE(HasInterval(cands, Interval(40, 60)));
  EXPECT_TRUE(HasInterval(cands, Interval::OpenClosed(60, 100)));
}

TEST(PartitionCandidatesTest, SharedLeftEdgeDegeneratesGracefully) {
  // Query [0, 60] inside [0, 100]: the left remainder is empty.
  const auto cands =
      GeneratePartitionCandidates({Interval(0, 100)}, Interval(0, 60));
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_TRUE(HasInterval(cands, Interval(0, 60)));
  EXPECT_TRUE(HasInterval(cands, Interval::OpenClosed(60, 100)));
}

TEST(PartitionCandidatesTest, ExistingIntervalsExcluded) {
  // The middle piece [40,60] already exists -> only remainders new.
  const auto cands = GeneratePartitionCandidates(
      {Interval(0, 100), Interval(40, 60)}, Interval(40, 60));
  EXPECT_FALSE(HasInterval(cands, Interval(40, 60)));
  EXPECT_TRUE(HasInterval(cands, Interval::ClosedOpen(0, 40)));
}

TEST(PartitionCandidatesTest, PiecesCoverSplitFragments) {
  // Every generated piece set, together with case-2 fragments, covers
  // the original fragments (no data loss on split).
  const std::vector<Interval> existing = {Interval(0, 50),
                                          Interval::OpenClosed(50, 100)};
  const Interval query(25, 75);
  const auto cands = GeneratePartitionCandidates(existing, query);
  Fragmentation all(cands);
  EXPECT_TRUE(all.Covers(Interval(0, 100)));
}

TEST(PartitionCandidatesTest, EmptyQueryNothing) {
  EXPECT_TRUE(GeneratePartitionCandidates({Interval(0, 10)}, Interval(5, 3)).empty());
}

TEST(ViewCandidatesTest, JoinAggProjectEnumerated) {
  auto join = Join(Scan("a"), Scan("b"), Cmp(CompareOp::kEq, Col("a.x"), Col("b.x")));
  auto proj = Project(join, {Col("a.x")}, {"a.x"});
  auto agg = Aggregate(Select(proj, RangePredicate("a.x", 0, 1)), {"a.x"},
                       {{AggFunc::kCount, "", "n"}});
  const auto cands = EnumerateViewCandidates(agg);
  ASSERT_EQ(cands.size(), 3u);  // aggregate, project, join; not select/scan
  EXPECT_EQ(cands[0]->kind(), PlanKind::kAggregate);
  EXPECT_EQ(cands[1]->kind(), PlanKind::kProject);
  EXPECT_EQ(cands[2]->kind(), PlanKind::kJoin);
}

TEST(ViewCandidatesTest, SelectionsAndScansExcluded) {
  auto plan = Select(Scan("a"), RangePredicate("a.x", 0, 1));
  EXPECT_TRUE(EnumerateViewCandidates(plan).empty());
}

TEST(SelectionContextsTest, ExtractsRangeAndChild) {
  auto join = Join(Scan("a"), Scan("b"), Cmp(CompareOp::kEq, Col("a.x"), Col("b.x")));
  auto sel = Select(join, RangePredicate("a.x", 10, 20));
  const auto ctxs = ExtractSelectionContexts(sel);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].column, "a.x");
  EXPECT_EQ(ctxs[0].range, Interval(10, 20));
  EXPECT_EQ(ctxs[0].selected_input.get(), join.get());
}

TEST(SelectionContextsTest, MultipleRangesMultipleContexts) {
  auto plan = Select(Scan("a"), And(RangePredicate("a.x", 0, 1),
                                    RangePredicate("a.y", 5, 6)));
  EXPECT_EQ(ExtractSelectionContexts(plan).size(), 2u);
}

TEST(SelectionContextsTest, UnboundedRangeSkipped) {
  auto plan = Select(Scan("a"), Cmp(CompareOp::kNe, Col("a.x"), LitD(1)));
  EXPECT_TRUE(ExtractSelectionContexts(plan).empty());
}

TEST(SelectionContextsTest, HalfBoundedRangeKept) {
  auto plan = Select(Scan("a"), Cmp(CompareOp::kGe, Col("a.x"), LitD(10)));
  const auto ctxs = ExtractSelectionContexts(plan);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].range.lo, 10.0);
  EXPECT_TRUE(std::isinf(ctxs[0].range.hi));
}

}  // namespace
}  // namespace deepsea
