#include "plan/plan_serde.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "plan/signature.h"
#include "workload/bigbench.h"

namespace deepsea {
namespace {

// ---------- plan serialization ----------

class PlanSerdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BigBenchDataset::Options data;
    data.total_bytes = 10e9;
    data.sample_rows_per_fact = 300;
    data.sample_rows_per_dim = 60;
    ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog_).ok());
  }

  // Round-trips a plan and verifies signature equality (the strongest
  // observable identity the engine relies on).
  void CheckRoundTrip(const PlanPtr& plan) {
    const std::string text = SerializePlan(plan);
    auto restored = DeserializePlan(text);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << text;
    auto sig1 = ComputeSignature(plan, catalog_);
    auto sig2 = ComputeSignature(*restored, catalog_);
    ASSERT_TRUE(sig1.ok());
    ASSERT_TRUE(sig2.ok()) << sig2.status().ToString();
    EXPECT_EQ(sig1->ToString(), sig2->ToString()) << text;
    // And serialization is stable (idempotent round trip).
    EXPECT_EQ(SerializePlan(*restored), text);
  }

  Catalog catalog_;
};

TEST_F(PlanSerdeTest, ScanRoundTrip) { CheckRoundTrip(Scan("store_sales")); }

TEST_F(PlanSerdeTest, SelectRoundTrip) {
  CheckRoundTrip(Select(Scan("store_sales"),
                        RangePredicate("store_sales.item_sk", 10, 20)));
}

TEST_F(PlanSerdeTest, AllTemplatesRoundTrip) {
  for (const std::string& name : BigBenchTemplates::Names()) {
    auto plan = BigBenchTemplates::Build(name, 1000, 2000);
    ASSERT_TRUE(plan.ok());
    CheckRoundTrip(*plan);
  }
}

TEST_F(PlanSerdeTest, Q30DRoundTrip) {
  auto plan = BigBenchTemplates::BuildQ30D(1000, 2000, 10, 20);
  ASSERT_TRUE(plan.ok());
  CheckRoundTrip(*plan);
}

TEST_F(PlanSerdeTest, ViewRefRoundTrip) {
  // ViewRef name/attr/fragments survive (signatures need the view table
  // in the catalog, so compare the serialized text instead).
  const PlanPtr plan = ViewRef(
      "v1", "store_sales.item_sk",
      {Interval::ClosedOpen(0, 100), Interval::OpenClosed(100, 250)});
  const std::string text = SerializePlan(plan);
  auto restored = DeserializePlan(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->table_name(), "v1");
  EXPECT_EQ((*restored)->view_partition_attr(), "store_sales.item_sk");
  ASSERT_EQ((*restored)->view_fragments().size(), 2u);
  EXPECT_EQ((*restored)->view_fragments()[0], Interval::ClosedOpen(0, 100));
  EXPECT_EQ((*restored)->view_fragments()[1], Interval::OpenClosed(100, 250));
}

TEST_F(PlanSerdeTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializePlan("").ok());
  EXPECT_FALSE(DeserializePlan("BOGUS x\n").ok());
  EXPECT_FALSE(DeserializePlan("SELECT (t.a >= 1)\n").ok());  // missing child
  EXPECT_FALSE(DeserializePlan("SCAN a\nSCAN b\n").ok());     // trailing root
}

// ---------- engine state persistence ----------

class EngineStateTest : public ::testing::Test {
 protected:
  BigBenchDataset::Options DataOptions() {
    BigBenchDataset::Options data;
    data.total_bytes = 100e9;
    data.sample_rows_per_fact = 300;
    data.sample_rows_per_dim = 60;
    return data;
  }
};

TEST_F(EngineStateTest, SaveLoadRoundTripPreservesPool) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine warm(&catalog, opts);
  for (int i = 0; i < 8; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000 + i * 20, 180000 + i * 20);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(warm.ProcessQuery(*plan).ok());
  }
  ASSERT_GT(warm.PoolBytes(), 0.0);
  auto state = warm.SaveState();
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  // A fresh engine over a fresh (identical) catalog restores the pool.
  Catalog catalog2;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
  DeepSeaEngine cold(&catalog2, opts);
  const Status load = cold.LoadState(*state);
  ASSERT_TRUE(load.ok()) << load.ToString();
  EXPECT_NEAR(cold.PoolBytes(), warm.PoolBytes(), warm.PoolBytes() * 1e-9);
  EXPECT_EQ(cold.fs().List("pool/").size(), warm.fs().List("pool/").size());
  EXPECT_GE(cold.now(), warm.now());
}

TEST_F(EngineStateTest, WarmStartAnswersFromViewsImmediately) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine warm(&catalog, opts);
  for (int i = 0; i < 8; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(warm.ProcessQuery(*plan).ok());
  }
  auto state = warm.SaveState();
  ASSERT_TRUE(state.ok());

  Catalog catalog2;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
  DeepSeaEngine cold(&catalog2, opts);
  ASSERT_TRUE(cold.LoadState(*state).ok());
  // The very first query on the warm-started engine reuses the restored
  // fragments.
  auto plan = BigBenchTemplates::Build("Q30", 110000, 170000);
  ASSERT_TRUE(plan.ok());
  auto report = cold.ProcessQuery(*plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->used_view.empty());
  EXPECT_LT(report->best_seconds, 0.5 * report->base_seconds);
}

TEST_F(EngineStateTest, LoadMergesIntoExistingTracking) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine a(&catalog, opts);
  for (int i = 0; i < 6; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000, 180000);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(a.ProcessQuery(*plan).ok());
  }
  auto state = a.SaveState();
  ASSERT_TRUE(state.ok());

  // Engine b has already tracked the same views via its own queries;
  // loading must merge by signature, not duplicate.
  Catalog catalog2;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
  DeepSeaEngine b(&catalog2, opts);
  auto plan = BigBenchTemplates::Build("Q30", 50000, 90000);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(b.ProcessQuery(*plan).ok());
  const size_t tracked_before = b.views().AllViews().size();
  ASSERT_TRUE(b.LoadState(*state).ok());
  // Only genuinely new views (the aggregates of a's queries) add
  // entries; the shared join/project views merged.
  EXPECT_LT(b.views().AllViews().size(), tracked_before + 4);
}

TEST_F(EngineStateTest, BadStateRejected) {
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  DeepSeaEngine engine(&catalog, EngineOptions{});
  EXPECT_FALSE(engine.LoadState("").ok());
  EXPECT_FALSE(engine.LoadState("garbage").ok());
  EXPECT_FALSE(engine.LoadState("DEEPSEA-STATE 1\nVIEW\nnope").ok());
}

TEST_F(EngineStateTest, CorruptedStateLeavesEngineUntouched) {
  // Every rejected blob must leave the engine exactly as it was: no
  // partially tracked views, no pool files, no clock advance.
  Catalog catalog;
  ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog).ok());
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.05;
  DeepSeaEngine warm(&catalog, opts);
  for (int i = 0; i < 8; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", 100000 + i * 20, 180000 + i * 20);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(warm.ProcessQuery(*plan).ok());
  }
  auto state = warm.SaveState();
  ASSERT_TRUE(state.ok());
  ASSERT_GT(warm.PoolBytes(), 0.0);

  std::vector<std::string> corrupted;
  // Truncated mid-blob.
  corrupted.push_back(state->substr(0, state->size() / 2));
  {
    // Version skew: a future format version must be rejected, not
    // half-understood.
    std::string skew = *state;
    const size_t pos = skew.find("DEEPSEA-STATE 2");
    ASSERT_NE(pos, std::string::npos);
    skew.replace(pos, 15, "DEEPSEA-STATE 3");
    corrupted.push_back(skew);
  }
  {
    // Field-mangled number: atof would quietly read this as 0.
    std::string mangled = *state;
    const size_t pos = mangled.find("STATS ");
    ASSERT_NE(pos, std::string::npos);
    mangled[pos + 6] = 'x';
    corrupted.push_back(mangled);
  }
  {
    // Field-mangled flag: only "0"/"1" are valid.
    std::string badflag = *state;
    const size_t pos = badflag.find("FRAGMENT ");
    ASSERT_NE(pos, std::string::npos);
    const size_t eol = badflag.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    badflag[eol - 1] = '7';
    corrupted.push_back(badflag);
  }
  // A structurally valid blob whose plan references an unknown table
  // fails signature resolution (inside the commit section) — that exit
  // path must be just as clean.
  corrupted.push_back(
      "DEEPSEA-STATE 2\nCLOCK 99\nVIEW\nPLAN 1\nSCAN no_such_table\n"
      "STATS 1 1 0 0 1\nENDVIEW\n");

  for (const std::string& blob : corrupted) {
    Catalog catalog2;
    ASSERT_TRUE(BigBenchDataset::Generate(DataOptions(), &catalog2).ok());
    DeepSeaEngine cold(&catalog2, opts);
    const int64_t clock_before = cold.now();
    EXPECT_FALSE(cold.LoadState(blob).ok());
    EXPECT_EQ(cold.PoolBytes(), 0.0);
    EXPECT_EQ(cold.views().AllViews().size(), 0u);
    EXPECT_TRUE(cold.fs().List("pool/").empty());
    EXPECT_EQ(cold.now(), clock_before);
    // A good blob still loads afterwards (rejection is stateless).
    EXPECT_TRUE(cold.LoadState(*state).ok());
    EXPECT_NEAR(cold.PoolBytes(), warm.PoolBytes(), warm.PoolBytes() * 1e-9);
  }
}


TEST_F(PlanSerdeTest, SortLimitRoundTrip) {
  const PlanPtr plan = Limit(
      Sort(Select(Scan("store_sales"),
                  RangePredicate("store_sales.item_sk", 5, 9)),
           {{"store_sales.net_paid", false}, {"store_sales.item_sk", true}}),
      25);
  const std::string text = SerializePlan(plan);
  auto restored = DeserializePlan(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << text;
  ASSERT_EQ((*restored)->kind(), PlanKind::kLimit);
  EXPECT_EQ((*restored)->limit(), 25);
  const PlanPtr sort = (*restored)->child(0);
  ASSERT_EQ(sort->kind(), PlanKind::kSort);
  ASSERT_EQ(sort->sort_keys().size(), 2u);
  EXPECT_FALSE(sort->sort_keys()[0].ascending);
  EXPECT_TRUE(sort->sort_keys()[1].ascending);
  EXPECT_EQ(SerializePlan(*restored), text);
}

}  // namespace
}  // namespace deepsea
