#include "storage/sim_fs.h"

#include <gtest/gtest.h>

namespace deepsea {
namespace {

TEST(SimFsTest, CreateReadDelete) {
  SimFs fs(128);
  ASSERT_TRUE(fs.Create("a/x", 1000).ok());
  EXPECT_TRUE(fs.Exists("a/x"));
  auto size = fs.Size("a/x");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000.0);
  auto read = fs.Read("a/x");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(fs.ledger().bytes_read, 1000.0);
  ASSERT_TRUE(fs.Delete("a/x").ok());
  EXPECT_FALSE(fs.Exists("a/x"));
  EXPECT_FALSE(fs.Delete("a/x").ok());
}

TEST(SimFsTest, CreateDuplicateFails) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("f", 1).ok());
  EXPECT_EQ(fs.Create("f", 1).code(), StatusCode::kAlreadyExists);
}

TEST(SimFsTest, PutReplaces) {
  SimFs fs;
  fs.Put("f", 100);
  fs.Put("f", 300);
  auto size = fs.Size("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 300.0);
  EXPECT_EQ(fs.ledger().files_created, 1);
  EXPECT_EQ(fs.ledger().bytes_written, 400.0);
}

TEST(SimFsTest, NumBlocksRoundsUp) {
  SimFs fs(128);
  fs.Put("small", 1);
  fs.Put("exact", 128);
  fs.Put("big", 129);
  fs.Put("empty", 0);
  EXPECT_EQ(*fs.NumBlocks("small"), 1);
  EXPECT_EQ(*fs.NumBlocks("exact"), 1);
  EXPECT_EQ(*fs.NumBlocks("big"), 2);
  EXPECT_EQ(*fs.NumBlocks("empty"), 0);
}

TEST(SimFsTest, PrefixAccounting) {
  SimFs fs;
  fs.Put("pool/v1/a", 10);
  fs.Put("pool/v1/b", 20);
  fs.Put("pool/v2/a", 40);
  fs.Put("tmp/x", 100);
  EXPECT_EQ(fs.TotalBytes("pool/"), 70.0);
  EXPECT_EQ(fs.TotalBytes("pool/v1/"), 30.0);
  EXPECT_EQ(fs.TotalBytes(), 170.0);
  EXPECT_EQ(fs.List("pool/").size(), 3u);
  EXPECT_EQ(fs.DeleteAll("pool/v1/"), 2);
  EXPECT_EQ(fs.TotalBytes("pool/"), 40.0);
}

TEST(SimFsTest, LedgerTracksDeletes) {
  SimFs fs;
  fs.Put("a", 50);
  ASSERT_TRUE(fs.Delete("a").ok());
  EXPECT_EQ(fs.ledger().bytes_deleted, 50.0);
  EXPECT_EQ(fs.ledger().files_deleted, 1);
}

TEST(SimFsTest, LedgerReset) {
  SimFs fs;
  fs.Put("a", 50);
  fs.mutable_ledger()->Reset();
  EXPECT_EQ(fs.ledger().bytes_written, 0.0);
  EXPECT_TRUE(fs.Exists("a"));  // files survive a ledger reset
}

TEST(SimFsTest, ListIsSorted) {
  SimFs fs;
  fs.Put("b", 1);
  fs.Put("a", 1);
  fs.Put("c", 1);
  EXPECT_EQ(fs.List(), (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace deepsea
