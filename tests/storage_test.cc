#include "storage/sim_fs.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fault_policy.h"

namespace deepsea {
namespace {

/// Fails every operation of one kind with a fixed status.
class FailOpPolicy : public FaultPolicy {
 public:
  explicit FailOpPolicy(FsOp op,
                        Status status = Status::Unavailable("injected"))
      : op_(op), status_(status) {}
  Status Inject(FsOp op, const std::string& path) override {
    (void)path;
    return op == op_ ? status_ : Status::OK();
  }

 private:
  FsOp op_;
  Status status_;
};

TEST(SimFsTest, CreateReadDelete) {
  SimFs fs(128);
  ASSERT_TRUE(fs.Create("a/x", 1000).ok());
  EXPECT_TRUE(fs.Exists("a/x"));
  auto size = fs.Size("a/x");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000.0);
  auto read = fs.Read("a/x");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(fs.ledger().bytes_read, 1000.0);
  ASSERT_TRUE(fs.Delete("a/x").ok());
  EXPECT_FALSE(fs.Exists("a/x"));
  EXPECT_FALSE(fs.Delete("a/x").ok());
}

TEST(SimFsTest, CreateDuplicateFails) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("f", 1).ok());
  EXPECT_EQ(fs.Create("f", 1).code(), StatusCode::kAlreadyExists);
}

TEST(SimFsTest, PutReplaces) {
  SimFs fs;
  fs.Put("f", 100);
  fs.Put("f", 300);
  auto size = fs.Size("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 300.0);
  EXPECT_EQ(fs.ledger().files_created, 1);
  EXPECT_EQ(fs.ledger().bytes_written, 400.0);
}

TEST(SimFsTest, NumBlocksRoundsUp) {
  SimFs fs(128);
  fs.Put("small", 1);
  fs.Put("exact", 128);
  fs.Put("big", 129);
  fs.Put("empty", 0);
  EXPECT_EQ(*fs.NumBlocks("small"), 1);
  EXPECT_EQ(*fs.NumBlocks("exact"), 1);
  EXPECT_EQ(*fs.NumBlocks("big"), 2);
  EXPECT_EQ(*fs.NumBlocks("empty"), 0);
}

TEST(SimFsTest, PrefixAccounting) {
  SimFs fs;
  fs.Put("pool/v1/a", 10);
  fs.Put("pool/v1/b", 20);
  fs.Put("pool/v2/a", 40);
  fs.Put("tmp/x", 100);
  EXPECT_EQ(fs.TotalBytes("pool/"), 70.0);
  EXPECT_EQ(fs.TotalBytes("pool/v1/"), 30.0);
  EXPECT_EQ(fs.TotalBytes(), 170.0);
  EXPECT_EQ(fs.List("pool/").size(), 3u);
  EXPECT_EQ(fs.DeleteAll("pool/v1/"), 2);
  EXPECT_EQ(fs.TotalBytes("pool/"), 40.0);
}

TEST(SimFsTest, LedgerTracksDeletes) {
  SimFs fs;
  fs.Put("a", 50);
  ASSERT_TRUE(fs.Delete("a").ok());
  EXPECT_EQ(fs.ledger().bytes_deleted, 50.0);
  EXPECT_EQ(fs.ledger().files_deleted, 1);
}

TEST(SimFsTest, LedgerReset) {
  SimFs fs;
  fs.Put("a", 50);
  fs.mutable_ledger()->Reset();
  EXPECT_EQ(fs.ledger().bytes_written, 0.0);
  EXPECT_TRUE(fs.Exists("a"));  // files survive a ledger reset
}

TEST(SimFsTest, ListIsSorted) {
  SimFs fs;
  fs.Put("b", 1);
  fs.Put("a", 1);
  fs.Put("c", 1);
  EXPECT_EQ(fs.List(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SimFsTest, OverwriteLedger) {
  SimFs fs;
  ASSERT_TRUE(fs.Put("f", 100).ok());
  ASSERT_TRUE(fs.Put("f", 300).ok());
  EXPECT_EQ(fs.ledger().files_overwritten, 1);
  EXPECT_EQ(fs.ledger().bytes_overwritten, 100.0);  // the replaced bytes
  ASSERT_TRUE(fs.Put("g", 5).ok());  // fresh path: not an overwrite
  EXPECT_EQ(fs.ledger().files_overwritten, 1);
}

TEST(SimFsTest, FailedOpChangesNothingButTheFailureCounters) {
  SimFs fs;
  ASSERT_TRUE(fs.Put("keep", 50).ok());
  const double written_before = fs.ledger().bytes_written;
  FailOpPolicy fail_put(FsOp::kPut);
  fs.set_fault_policy(&fail_put);
  const Status st = fs.Put("new", 100);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(st.IsTransient());
  EXPECT_FALSE(fs.Exists("new"));
  EXPECT_EQ(fs.TotalBytes(), 50.0);
  EXPECT_EQ(fs.ledger().bytes_written, written_before);
  EXPECT_EQ(fs.ledger().failed_puts, 1);
  EXPECT_EQ(fs.ledger().FailedOps(), 1);
  // Other op kinds still pass.
  EXPECT_TRUE(fs.Delete("keep").ok());
  fs.set_fault_policy(nullptr);
  EXPECT_TRUE(fs.Put("new", 100).ok());
}

TEST(SimFsTest, EveryGuardedOpKindCanBeFailed) {
  {
    SimFs fs;
    FailOpPolicy p(FsOp::kCreate);
    fs.set_fault_policy(&p);
    EXPECT_FALSE(fs.Create("f", 1).ok());
    EXPECT_FALSE(fs.Exists("f"));
    EXPECT_EQ(fs.ledger().failed_creates, 1);
  }
  {
    SimFs fs;
    FailOpPolicy p(FsOp::kPut);
    fs.set_fault_policy(&p);
    EXPECT_FALSE(fs.Put("f", 1).ok());
    EXPECT_FALSE(fs.Exists("f"));
    EXPECT_EQ(fs.ledger().failed_puts, 1);
  }
  {
    SimFs fs;
    ASSERT_TRUE(fs.Put("f", 1).ok());
    FailOpPolicy p(FsOp::kDelete);
    fs.set_fault_policy(&p);
    EXPECT_FALSE(fs.Delete("f").ok());
    EXPECT_TRUE(fs.Exists("f"));  // a failed delete removes nothing
    EXPECT_EQ(fs.ledger().failed_deletes, 1);
  }
  {
    SimFs fs;
    ASSERT_TRUE(fs.Put("f", 1).ok());
    FailOpPolicy p(FsOp::kRead);
    fs.set_fault_policy(&p);
    EXPECT_FALSE(fs.Read("f").ok());
    EXPECT_EQ(fs.ledger().bytes_read, 0.0);
    EXPECT_EQ(fs.ledger().failed_reads, 1);
  }
}

TEST(SimFsTest, RestoreForRollbackBypassesPolicyAndLedger) {
  SimFs fs;
  ASSERT_TRUE(fs.Put("a", 100).ok());
  ASSERT_TRUE(fs.Put("b", 200).ok());
  const double written = fs.ledger().bytes_written;
  const double deleted = fs.ledger().bytes_deleted;
  // A policy that fails everything must not stop a rollback restore.
  FailOpPolicy fail_all_puts(FsOp::kPut, Status::Internal("down"));
  fs.set_fault_policy(&fail_all_puts);
  fs.RestoreForRollback("a", /*existed=*/false, 0.0);     // undo a create
  fs.RestoreForRollback("b", /*existed=*/true, 150.0);    // undo an overwrite
  fs.RestoreForRollback("c", /*existed=*/true, 70.0);     // undo a delete
  EXPECT_FALSE(fs.Exists("a"));
  EXPECT_EQ(*fs.Size("b"), 150.0);
  EXPECT_EQ(*fs.Size("c"), 70.0);
  EXPECT_EQ(fs.ledger().rollback_restores, 3);
  // Write/delete totals keep recording only the staged (undone) work.
  EXPECT_EQ(fs.ledger().bytes_written, written);
  EXPECT_EQ(fs.ledger().bytes_deleted, deleted);
}

TEST(ScheduledFaultPolicyTest, EveryNthAfterCountAndBudget) {
  ScheduledFaultPolicy policy(/*seed=*/7);
  FaultRule rule;
  rule.ops = {FsOp::kPut};
  rule.every_nth = 2;       // every 2nd matching op...
  rule.after_count = 1;     // ...counted after skipping the first match
  rule.max_failures = 2;    // ...at most twice
  rule.transient = true;
  policy.AddRule(rule);
  SimFs fs;
  fs.set_fault_policy(&policy);
  std::vector<bool> failed;
  for (int i = 0; i < 8; ++i) {
    failed.push_back(!fs.Put("p" + std::to_string(i), 1).ok());
  }
  // Matches 2,4 (the 2nd and 4th past the skipped first) fail; budget
  // then exhausted.
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, false, true,
                                       false, false, false}));
  EXPECT_EQ(policy.faults_injected(), 2);
  EXPECT_EQ(policy.faults_for(FsOp::kPut), 2);
  EXPECT_EQ(policy.ops_seen(), 8);
}

TEST(ScheduledFaultPolicyTest, PathSubstringScopesTheRule) {
  ScheduledFaultPolicy policy(/*seed=*/7);
  FaultRule rule;
  rule.path_substring = "pool/v1/";
  rule.every_nth = 1;
  policy.AddRule(rule);
  SimFs fs;
  fs.set_fault_policy(&policy);
  EXPECT_FALSE(fs.Put("pool/v1/full", 10).ok());
  EXPECT_TRUE(fs.Put("pool/v2/full", 10).ok());
  EXPECT_TRUE(fs.Put("tmp/x", 10).ok());
}

TEST(ScheduledFaultPolicyTest, TransientAndPermanentCodes) {
  ScheduledFaultPolicy policy(/*seed=*/7);
  FaultRule transient;
  transient.path_substring = "t/";
  transient.every_nth = 1;
  transient.transient = true;
  policy.AddRule(transient);
  FaultRule permanent;
  permanent.path_substring = "p/";
  permanent.every_nth = 1;
  permanent.permanent_code = StatusCode::kInternal;
  policy.AddRule(permanent);
  SimFs fs;
  fs.set_fault_policy(&policy);
  const Status t = fs.Put("t/x", 1);
  EXPECT_EQ(t.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(t.IsTransient());
  const Status p = fs.Put("p/x", 1);
  EXPECT_EQ(p.code(), StatusCode::kInternal);
  EXPECT_FALSE(p.IsTransient());
}

TEST(ScheduledFaultPolicyTest, ProbabilityIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    ScheduledFaultPolicy policy(seed);
    FaultRule rule;
    rule.probability = 0.3;
    rule.transient = true;
    policy.AddRule(rule);
    SimFs fs;
    fs.set_fault_policy(&policy);
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) {
      failed.push_back(!fs.Put("p" + std::to_string(i), 1).ok());
    }
    return failed;
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));   // same seed, same op sequence -> same schedule
  EXPECT_NE(a, run(43));   // different seed -> different schedule
  int fails = 0;
  for (bool f : a) fails += f ? 1 : 0;
  EXPECT_GT(fails, 0);
  EXPECT_LT(fails, 64);
}

}  // namespace
}  // namespace deepsea
