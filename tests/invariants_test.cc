// Property-based engine invariants: random workloads swept over every
// strategy and several seeds must preserve the system's structural
// guarantees regardless of what the adaptive machinery decides.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "core/engine.h"
#include "core/view_sizing.h"
#include "exec/executor.h"
#include "plan/pushdown.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"

namespace deepsea {
namespace {

/// Observer that re-checks the structural invariants *inside* the
/// commit section, at the end of every Apply and Merge stage — i.e.
/// after every PoolManager::Apply, before the engine even returns the
/// query. The per-query checks in the test body only see the state
/// after the merge pass; this probe pins the invariants at the exact
/// stage boundaries, and additionally verifies that every eviction
/// released its bytes from the simulated FS (the file is gone).
class InvariantProbe : public EngineObserver {
 public:
  InvariantProbe(const DeepSeaEngine* engine, double s_max, bool overlapping)
      : engine_(engine), s_max_(s_max), overlapping_(overlapping) {}

  void OnEvict(const ViewInfo& view, const std::string& attr,
               const Interval& interval, double bytes,
               const std::string& tenant) override {
    (void)bytes;
    (void)tenant;
    evicted_paths_.push_back(
        attr.empty() ? StrFormat("pool/%s/full", view.id.c_str())
                     : FragmentPath(view, attr, interval));
  }

  void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                  double sim_seconds, double wall_seconds) override {
    (void)ctx;
    (void)sim_seconds;
    (void)wall_seconds;
    if (stage != EngineStage::kApply && stage != EngineStage::kMerge) return;
    ++checks_;
    // Hooks run inside the exclusive commit, so the unlocked reads are
    // consistent. INVARIANT 1: pool never exceeds S_max, not even
    // between Apply and the merge pass.
    EXPECT_LE(engine_->PoolBytes(), s_max_ * 1.0001)
        << "at stage " << EngineStageName(stage);
    // INVARIANT 2: pool accounting matches the simulated FS exactly.
    EXPECT_NEAR(engine_->PoolBytes(), engine_->fs().TotalBytes("pool/"),
                1.0 + engine_->PoolBytes() * 1e-9)
        << "at stage " << EngineStageName(stage);
    // Evicted pieces must actually have left the FS (bytes released).
    for (const std::string& path : evicted_paths_) {
      EXPECT_FALSE(engine_->fs().Exists(path)) << path << " survived eviction";
    }
    evicted_paths_.clear();
    // INVARIANT 3: horizontal mode keeps materialized fragments of each
    // partition pairwise disjoint at every stage boundary.
    if (!overlapping_) {
      for (const ViewInfo* v : engine_->views().AllViews()) {
        for (const auto& [attr, part] : v->partitions) {
          const auto mats = part.MaterializedIntervals();
          for (size_t i = 0; i < mats.size(); ++i) {
            for (size_t j = i + 1; j < mats.size(); ++j) {
              EXPECT_FALSE(mats[i].Overlaps(mats[j]))
                  << attr << ": " << mats[i].ToString() << " vs "
                  << mats[j].ToString() << " at stage "
                  << EngineStageName(stage);
            }
          }
        }
      }
    }
  }

  int64_t checks() const { return checks_; }

 private:
  const DeepSeaEngine* engine_;
  double s_max_;
  bool overlapping_;
  std::vector<std::string> evicted_paths_;
  int64_t checks_ = 0;
};

struct SweepParam {
  StrategyKind strategy;
  ValueModel model;
  bool overlapping;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = StrategyName(p.strategy);
  name += std::string("_") + ValueModelName(p.model);
  name += p.overlapping ? "_ovl" : "_hor";
  name += "_s" + std::to_string(p.seed);
  // Sanitize for gtest.
  std::string out;
  for (char c : name) out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

class EngineInvariantsTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    BigBenchDataset::Options data;
    data.total_bytes = 80e9;
    data.sample_rows_per_fact = 800;
    data.sample_rows_per_dim = 150;
    data.seed = 3;
    ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_P(EngineInvariantsTest, StructuralInvariantsHoldUnderRandomWorkload) {
  const SweepParam& p = GetParam();
  EngineOptions opts;
  opts.strategy = p.strategy;
  opts.value_model = p.model;
  opts.overlapping_fragments = p.overlapping;
  opts.use_mle_smoothing = p.model == ValueModel::kDeepSea;
  opts.benefit_cost_threshold = 0.05;
  opts.pool_limit_bytes = 6e9;  // tight: forces evictions
  opts.physical_execution = true;
  DeepSeaEngine engine(&catalog_, opts);
  InvariantProbe probe(&engine, opts.pool_limit_bytes, p.overlapping);
  engine.set_observer(&probe);
  Executor reference(&catalog_);

  Rng rng(p.seed);
  const auto names = BigBenchTemplates::Names();
  for (int q = 0; q < 25; ++q) {
    // Random template, random range (mixture of regimes and widths).
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double width = rng.Uniform(2000, 60000);
    const double center = rng.Bernoulli(0.7) ? rng.Gaussian(150000, 10000)
                                             : rng.Uniform(0, 400000);
    const double lo = Clamp(center - width / 2, 0, 400000 - width);
    auto plan = BigBenchTemplates::Build(name, lo, lo + width);
    ASSERT_TRUE(plan.ok());
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // INVARIANT 1: pool never exceeds S_max.
    EXPECT_LE(engine.PoolBytes(), opts.pool_limit_bytes * 1.0001)
        << "query " << q;

    // INVARIANT 2: pool accounting matches the simulated FS exactly.
    EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
                1.0 + engine.PoolBytes() * 1e-9)
        << "query " << q;

    // INVARIANT 3: horizontal mode keeps materialized fragments of each
    // partition pairwise disjoint.
    if (!p.overlapping) {
      for (const ViewInfo* v : engine.views().AllViews()) {
        for (const auto& [attr, part] : v->partitions) {
          const auto mats = part.MaterializedIntervals();
          for (size_t i = 0; i < mats.size(); ++i) {
            for (size_t j = i + 1; j < mats.size(); ++j) {
              EXPECT_FALSE(mats[i].Overlaps(mats[j]))
                  << attr << ": " << mats[i].ToString() << " vs "
                  << mats[j].ToString();
            }
          }
        }
      }
    }

    // INVARIANT 4: physical results always equal ground truth.
    auto truth = reference.Execute(PushDownSelections(*plan, catalog_));
    ASSERT_TRUE(truth.ok());
    std::multiset<std::string> a, b;
    for (const Row& row : report->physical.rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      a.insert(line);
    }
    for (const Row& row : truth->rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      b.insert(line);
    }
    EXPECT_EQ(a, b) << "result mismatch at query " << q << " (" << name << ")";

    // INVARIANT 5: charged time is never negative and at least the
    // cheapest possible execution.
    EXPECT_GE(report->best_seconds, 0.0);
    EXPECT_GE(report->total_seconds, report->best_seconds);
  }

  // The probe must actually have run: one Apply (and, when enabled, one
  // Merge) stage boundary per query. Hive never reaches Apply — it is
  // the no-materialization baseline.
  if (p.strategy != StrategyKind::kHive) {
    EXPECT_GE(probe.checks(), 25);
  }

  // INVARIANT 6: every materialized fragment interval is non-empty and
  // lies inside its partition's domain.
  for (const ViewInfo* v : engine.views().AllViews()) {
    for (const auto& [attr, part] : v->partitions) {
      for (const FragmentStats& f : part.fragments) {
        if (!f.materialized) continue;
        EXPECT_FALSE(f.interval.IsEmpty());
        EXPECT_GE(f.interval.lo, part.domain.lo - 1e-6);
        EXPECT_LE(f.interval.hi, part.domain.hi + 1e-6);
        EXPECT_GE(f.size_bytes, 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariantsTest,
    ::testing::Values(
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, true, 1},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, true, 2},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, false, 3},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kNectar, true, 4},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kNectarPlus, true, 5},
        SweepParam{StrategyKind::kNoRefine, ValueModel::kDeepSea, true, 6},
        SweepParam{StrategyKind::kEquiDepth, ValueModel::kDeepSea, true, 7},
        SweepParam{StrategyKind::kNoPartition, ValueModel::kDeepSea, true, 8},
        SweepParam{StrategyKind::kHive, ValueModel::kDeepSea, true, 9}),
    ParamName);

}  // namespace
}  // namespace deepsea
