// Property-based engine invariants: random workloads swept over every
// strategy and several seeds must preserve the system's structural
// guarantees regardless of what the adaptive machinery decides.

#include <set>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/executor.h"
#include "plan/pushdown.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"

namespace deepsea {
namespace {

struct SweepParam {
  StrategyKind strategy;
  ValueModel model;
  bool overlapping;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = StrategyName(p.strategy);
  name += std::string("_") + ValueModelName(p.model);
  name += p.overlapping ? "_ovl" : "_hor";
  name += "_s" + std::to_string(p.seed);
  // Sanitize for gtest.
  std::string out;
  for (char c : name) out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

class EngineInvariantsTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    BigBenchDataset::Options data;
    data.total_bytes = 80e9;
    data.sample_rows_per_fact = 800;
    data.sample_rows_per_dim = 150;
    data.seed = 3;
    ASSERT_TRUE(BigBenchDataset::Generate(data, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_P(EngineInvariantsTest, StructuralInvariantsHoldUnderRandomWorkload) {
  const SweepParam& p = GetParam();
  EngineOptions opts;
  opts.strategy = p.strategy;
  opts.value_model = p.model;
  opts.overlapping_fragments = p.overlapping;
  opts.use_mle_smoothing = p.model == ValueModel::kDeepSea;
  opts.benefit_cost_threshold = 0.05;
  opts.pool_limit_bytes = 6e9;  // tight: forces evictions
  opts.physical_execution = true;
  DeepSeaEngine engine(&catalog_, opts);
  Executor reference(&catalog_);

  Rng rng(p.seed);
  const auto names = BigBenchTemplates::Names();
  for (int q = 0; q < 25; ++q) {
    // Random template, random range (mixture of regimes and widths).
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    const double width = rng.Uniform(2000, 60000);
    const double center = rng.Bernoulli(0.7) ? rng.Gaussian(150000, 10000)
                                             : rng.Uniform(0, 400000);
    const double lo = Clamp(center - width / 2, 0, 400000 - width);
    auto plan = BigBenchTemplates::Build(name, lo, lo + width);
    ASSERT_TRUE(plan.ok());
    auto report = engine.ProcessQuery(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // INVARIANT 1: pool never exceeds S_max.
    EXPECT_LE(engine.PoolBytes(), opts.pool_limit_bytes * 1.0001)
        << "query " << q;

    // INVARIANT 2: pool accounting matches the simulated FS exactly.
    EXPECT_NEAR(engine.PoolBytes(), engine.fs().TotalBytes("pool/"),
                1.0 + engine.PoolBytes() * 1e-9)
        << "query " << q;

    // INVARIANT 3: horizontal mode keeps materialized fragments of each
    // partition pairwise disjoint.
    if (!p.overlapping) {
      for (const ViewInfo* v : engine.views().AllViews()) {
        for (const auto& [attr, part] : v->partitions) {
          const auto mats = part.MaterializedIntervals();
          for (size_t i = 0; i < mats.size(); ++i) {
            for (size_t j = i + 1; j < mats.size(); ++j) {
              EXPECT_FALSE(mats[i].Overlaps(mats[j]))
                  << attr << ": " << mats[i].ToString() << " vs "
                  << mats[j].ToString();
            }
          }
        }
      }
    }

    // INVARIANT 4: physical results always equal ground truth.
    auto truth = reference.Execute(PushDownSelections(*plan, catalog_));
    ASSERT_TRUE(truth.ok());
    std::multiset<std::string> a, b;
    for (const Row& row : report->physical.rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      a.insert(line);
    }
    for (const Row& row : truth->rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      b.insert(line);
    }
    EXPECT_EQ(a, b) << "result mismatch at query " << q << " (" << name << ")";

    // INVARIANT 5: charged time is never negative and at least the
    // cheapest possible execution.
    EXPECT_GE(report->best_seconds, 0.0);
    EXPECT_GE(report->total_seconds, report->best_seconds);
  }

  // INVARIANT 6: every materialized fragment interval is non-empty and
  // lies inside its partition's domain.
  for (const ViewInfo* v : engine.views().AllViews()) {
    for (const auto& [attr, part] : v->partitions) {
      for (const FragmentStats& f : part.fragments) {
        if (!f.materialized) continue;
        EXPECT_FALSE(f.interval.IsEmpty());
        EXPECT_GE(f.interval.lo, part.domain.lo - 1e-6);
        EXPECT_LE(f.interval.hi, part.domain.hi + 1e-6);
        EXPECT_GE(f.size_bytes, 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariantsTest,
    ::testing::Values(
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, true, 1},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, true, 2},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kDeepSea, false, 3},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kNectar, true, 4},
        SweepParam{StrategyKind::kDeepSea, ValueModel::kNectarPlus, true, 5},
        SweepParam{StrategyKind::kNoRefine, ValueModel::kDeepSea, true, 6},
        SweepParam{StrategyKind::kEquiDepth, ValueModel::kDeepSea, true, 7},
        SweepParam{StrategyKind::kNoPartition, ValueModel::kDeepSea, true, 8},
        SweepParam{StrategyKind::kHive, ValueModel::kDeepSea, true, 9}),
    ParamName);

}  // namespace
}  // namespace deepsea
