// promlint: strict Prometheus text-exposition-format checker.
//
// Usage:  promlint <file.prom> [more files...]
//         promlint -          (read a single exposition from stdin)
//
// Exit status 0 when every input is valid, 1 on the first violation
// (printed with its line number). CI runs this over the scrape the
// quickstart example writes (quickstart_metrics.prom); it shares the
// validator in src/exp/metrics.h with the unit tests, so the CLI and
// the test suite can never disagree about what "valid" means.

#include <cstdio>
#include <string>

#include "exp/metrics.h"

namespace {

bool ReadAll(std::FILE* f, std::string* out) {
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  return std::ferror(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.prom>... | %s -\n", argv[0],
                 argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string text;
    if (arg == "-") {
      if (!ReadAll(stdin, &text)) {
        std::fprintf(stderr, "promlint: error reading stdin\n");
        return 1;
      }
    } else {
      std::FILE* f = std::fopen(arg.c_str(), "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "promlint: cannot open %s\n", arg.c_str());
        return 1;
      }
      const bool ok = ReadAll(f, &text);
      std::fclose(f);
      if (!ok) {
        std::fprintf(stderr, "promlint: error reading %s\n", arg.c_str());
        return 1;
      }
    }
    const deepsea::Status status = deepsea::ValidatePrometheusText(text);
    if (!status.ok()) {
      std::fprintf(stderr, "promlint: %s: %s\n",
                   arg == "-" ? "<stdin>" : arg.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("promlint: %s: OK\n", arg == "-" ? "<stdin>" : arg.c_str());
  }
  return 0;
}
